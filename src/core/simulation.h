// Simulation: owns the component graph and drives the (optionally parallel)
// discrete-event engine.
//
// Parallel execution model — an in-process reproduction of SST's
// MPI-rank-based conservative PDES:
//   * components are partitioned across R ranks (threads);
//   * each rank runs its own TimeVortex;
//   * events on links that cross ranks are exchanged through mailboxes;
//   * the minimum latency of cross-rank links is the *lookahead*: every
//     rank may safely process all events earlier than
//     (global minimum next event time + lookahead) before the next
//     synchronization, because no in-flight event can arrive earlier;
//   * mailbox drains sort by (time, priority, source link, source sequence)
//     so results are bit-identical regardless of thread interleaving and
//     identical to a serial run up to window-quantized termination.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/component.h"
#include "core/link.h"
#include "core/statistics.h"
#include "core/sync_policy.h"
#include "core/time_vortex.h"
#include "core/types.h"

namespace sst {

namespace obs {
class Tracer;
class MetricsCollector;
}  // namespace obs

namespace ckpt {
class CheckpointEngine;
class Migrator;
}  // namespace ckpt

/// The run loops poll cheap-but-not-free conditions (the watchdog flag,
/// the wall-clock checkpoint cadence) once every kEnginePollInterval
/// events, so the hot path pays one AND-and-branch instead of an atomic
/// load or a clock read per event.  Power of two; kEnginePollMask is the
/// corresponding `(steps & mask) == 0` mask.
inline constexpr std::uint64_t kEnginePollInterval = 1024;
inline constexpr std::uint64_t kEnginePollMask = kEnginePollInterval - 1;

/// How components are assigned to ranks when no explicit rank is given.
enum class PartitionStrategy {
  kLinear,      // contiguous blocks by creation order
  kRoundRobin,  // id % num_ranks
  kMinCut,      // BFS-grown blocks over the link graph (fewer cut links)
};

struct SimConfig {
  /// Number of parallel partitions (in-process ranks).  1 = serial engine.
  unsigned num_ranks = 1;
  /// Hard stop time; kTimeNever runs until the termination protocol fires.
  SimTime end_time = kTimeNever;
  /// Global seed feeding every component RNG stream.
  std::uint64_t seed = 1;
  PartitionStrategy partition = PartitionStrategy::kLinear;
  /// Print engine progress/diagnostics to stderr.
  bool verbose = false;
  /// Seed for fault-injection RNG streams (src/fault); 0 = reuse `seed`.
  /// Kept separate so fault scenarios can be varied without perturbing the
  /// workload's own random behaviour.
  std::uint64_t fault_seed = 0;
  /// Wall-clock budget for run() in seconds; 0 disables the watchdog.
  /// On expiry the run stops and throws a SimulationError carrying a
  /// per-rank diagnostic report instead of hanging forever.
  double watchdog_seconds = 0.0;
  /// Abort with a diagnostic report when every event queue drains while
  /// registered primary components are still unsatisfied (a model-level
  /// deadlock that would otherwise end the run silently).
  bool detect_deadlock = true;

  // --- synchronization (src/core/sync_policy.h) ----------------------
  /// How parallel ranks synchronize.  kConservative (default) is the
  /// golden-pinned fixed-lookahead engine; kAdaptive sizes windows per
  /// epoch (still causally exact); kLax trades timestamp accuracy for
  /// fewer barriers.  Ignored when num_ranks == 1.
  SyncMode sync_mode = SyncMode::kConservative;
  /// kLax only: how far ranks may run ahead of the conservative horizon.
  /// Late cross-rank events are applied with a timestamp correction that
  /// is always smaller than this bound.  Must be >= 1ps in lax mode.
  SimTime lax_skew = 0;
  /// kAdaptive only: upper clamp for the adaptive window controller
  /// (0 = the engine's kMaxSyncWindow default of 10us).
  SimTime sync_window_max = 0;

  // --- online rebalancing (sync_policy.h + src/ckpt/migrate.h) --------
  /// Migrate components across ranks at sync barriers when the measured
  /// per-rank event-rate imbalance crosses rebalance_threshold.  The
  /// decision function is deterministic (epoch event counts + component
  /// ids only), and a migration is invisible to the model — conservative
  /// and adaptive runs stay byte-identical to their non-rebalanced
  /// selves at every rank count.  Requires an installed migrator
  /// (ckpt::install_migrator) when num_ranks > 1.  Ignored serially.
  bool rebalance = false;
  /// Fire when max/mean per-rank epoch event rate reaches this ratio.
  double rebalance_threshold = 1.5;
  /// Sync epochs between imbalance checks.
  std::uint64_t rebalance_period = 8;
  /// Components migrated per rebalance at most.
  std::uint32_t rebalance_max_moves = 8;

  // --- observability (src/obs) ---------------------------------------
  /// Enable the event tracer (implied when trace_path is set).  The
  /// default trace records only model-level activity and is byte-identical
  /// at any rank count.
  bool trace = false;
  /// Write Chrome trace-event JSON here at the end of run() ("" = don't).
  std::string trace_path;
  /// Also record rank-dependent engine spans (sync windows) in the trace.
  /// Opt-in because it breaks the rank-count byte-identity.
  bool trace_engine = false;
  /// Enable periodic metrics snapshots (implied when metrics_path is set).
  bool metrics = false;
  /// Write JSONL metrics snapshots here at the end of run() ("" = don't).
  std::string metrics_path;
  /// Simulated-time period between metrics snapshots.
  SimTime metrics_period = kMillisecond;
  /// Engine self-profiling: per-rank engine.rankN statistics (events
  /// processed, TimeVortex depth, mailbox traffic, barrier wait) plus
  /// per-rank engine lines in the metrics stream.  Opt-in because the
  /// values are inherently rank-count-dependent.
  bool profile_engine = false;
  /// Stats output destination and format for tools ("" = tool default;
  /// format is "console", "csv", or "json").  The engine itself does not
  /// write these — sstsim honours them after run().
  std::string stats_path;
  std::string stats_format;

  // --- checkpointing (src/ckpt) --------------------------------------
  /// Simulated-time cadence between checkpoints; 0 disables the
  /// simulated-time trigger.  In parallel runs checkpoints are cut at
  /// sync-window barriers, so the period must be >= the sync window
  /// (initialize() rejects shorter periods with a ConfigError).
  SimTime checkpoint_period = 0;
  /// Wall-clock cadence between checkpoints in seconds; 0 disables the
  /// wall-clock trigger.  Either trigger may be used alone or combined.
  double checkpoint_wall = 0.0;
  /// Directory receiving checkpoint files (created on demand).
  std::string checkpoint_dir = "ckpt";
  /// Rotating retention: only the newest K checkpoint files are kept.
  unsigned checkpoint_keep = 3;
};

/// Engine-level metrics from a completed run (used by the PDES scaling
/// experiments and by tests).
struct RunStats {
  std::uint64_t events_processed = 0;  // summed across ranks
  std::uint64_t clock_ticks = 0;       // clock dispatches across ranks
  std::uint64_t sync_windows = 0;      // barrier rounds (parallel only)
  std::uint64_t cross_rank_events = 0; // events that crossed a partition
  SimTime final_time = 0;              // simulated time at termination
  double wall_seconds = 0.0;
  std::uint64_t cut_links = 0;         // link endpoints crossing ranks
  SimTime lookahead = 0;               // sync window lookahead used
  std::uint64_t checkpoints = 0;       // snapshots written this run
  double checkpoint_seconds = 0.0;     // wall time spent writing them
  std::uint64_t pool_allocs = 0;       // fresh clock-tick allocations
  std::uint64_t pool_recycles = 0;     // tick events reused from the pool
  std::uint64_t exchange_flushes = 0;  // batched cross-rank buffer flushes
  SyncMode sync_mode = SyncMode::kConservative;  // mode this run used
  SimTime min_window = 0;              // smallest sync window used (parallel)
  SimTime max_window = 0;              // largest sync window used (parallel)
  std::uint64_t lax_stragglers = 0;    // late events given a corrected time
  SimTime lax_max_skew = 0;            // largest correction applied (ps)
  std::uint64_t rebalances = 0;        // rebalance passes that moved >= 1
  std::uint64_t components_migrated = 0;  // cross-rank component moves
  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(events_processed) /
                                  wall_seconds
                            : 0.0;
  }
};

class Simulation {
 public:
  explicit Simulation(SimConfig config = {});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // ---- construction phase -------------------------------------------

  /// Creates a component.  T's constructor runs with this Simulation as
  /// its build context, so the component may configure links, clocks, and
  /// statistics immediately.
  template <typename T, typename... Args>
  T* add_component(const std::string& name, Args&&... args) {
    begin_component(name);
    std::unique_ptr<Component> comp;
    try {
      comp = std::make_unique<T>(std::forward<Args>(args)...);
    } catch (...) {
      abort_component();
      throw;
    }
    return static_cast<T*>(end_component(std::move(comp)));
  }

  /// Connects two declared ports with the given latency (both directions).
  void connect(const std::string& comp_a, const std::string& port_a,
               const std::string& comp_b, const std::string& port_b,
               SimTime latency_ps);

  /// Connection with distinct per-direction latencies:
  /// latency_a_to_b applies to events sent from comp_a's endpoint.
  void connect(const std::string& comp_a, const std::string& port_a,
               const std::string& comp_b, const std::string& port_b,
               SimTime latency_a_to_b, SimTime latency_b_to_a);

  /// Pins a component to a rank (overrides the partitioner).
  void set_component_rank(const std::string& name, RankId rank);

  /// Installs a fault-injection hook on the sending side of
  /// (component, port).  Models hold private RNG state and must not be
  /// shared between endpoints; to fault both directions of a link install
  /// one model per endpoint.  Must be called before run().
  void install_link_fault(const std::string& component,
                          const std::string& port,
                          std::unique_ptr<LinkFault> fault);

  /// Seed that fault models should derive their streams from
  /// (config().fault_seed, falling back to config().seed when unset).
  [[nodiscard]] std::uint64_t effective_fault_seed() const {
    return config_.fault_seed != 0 ? config_.fault_seed : config_.seed;
  }

  /// Wires links, partitions, runs init phases and setup().  Called
  /// automatically by run() when needed; idempotent.
  void initialize();

  // ---- run phase ----------------------------------------------------

  /// Runs to completion; returns engine metrics.
  RunStats run();

  /// True once run() finished.
  [[nodiscard]] bool finished() const { return state_ == State::kDone; }

  // ---- queries ------------------------------------------------------

  [[nodiscard]] Component* find_component(const std::string& name) const;
  [[nodiscard]] std::size_t component_count() const {
    return components_.size();
  }
  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] StatisticsRegistry& stats() { return stats_; }
  [[nodiscard]] const StatisticsRegistry& stats() const { return stats_; }
  [[nodiscard]] const RunStats& run_stats() const { return run_stats_; }

  /// Current time of a rank (what Component::now() reports).
  [[nodiscard]] SimTime rank_now(RankId r) const { return ranks_[r].now; }
  /// Current time of rank 0 — convenience for serial simulations.
  [[nodiscard]] SimTime now() const { return ranks_[0].now; }

  /// Parses a time string to picoseconds ("10ns" -> 10000).
  [[nodiscard]] static SimTime time(std::string_view text);

  /// Rank assignment of each component (valid after initialize()).
  [[nodiscard]] RankId component_rank(ComponentId id) const;

  // ---- observability ------------------------------------------------

  /// True when the event tracer is active for this run.
  [[nodiscard]] bool tracing() const { return tracer_ != nullptr; }
  /// True when periodic metrics snapshots are being collected.
  [[nodiscard]] bool metrics_enabled() const { return metrics_ != nullptr; }

  /// Writes the merged Chrome trace-event JSON (requires tracing()).
  void write_trace_json(std::ostream& os) const;
  /// Writes the merged metrics snapshot stream (requires metrics_enabled()).
  void write_metrics_jsonl(std::ostream& os) const;

  // ---- checkpointing (src/ckpt) -------------------------------------

  /// Installs the checkpoint writer callback.  The engine invokes it at
  /// safe points (between events in serial runs, inside the sync-window
  /// barrier in parallel runs) whenever the configured simulated-time or
  /// wall-clock cadence is due.  Writer failures are reported to stderr
  /// and the run continues.  Installed by ckpt::install_writer().
  void set_checkpoint_writer(std::function<void(Simulation&)> writer);

  /// True when a checkpoint writer is installed.
  [[nodiscard]] bool checkpointing() const {
    return static_cast<bool>(ckpt_writer_);
  }

  // ---- online rebalancing (src/ckpt/migrate.h) ----------------------

  /// Installs the migration callback invoked at sync barriers to move
  /// one component (state + pending events) to another rank.  The
  /// engine never migrates without one; ckpt::install_migrator() wires
  /// the Serializer-backed implementation.
  void set_migrator(
      std::function<void(Simulation&, ComponentId, RankId)> migrator);

  /// True when a migrator is installed.
  [[nodiscard]] bool can_migrate() const {
    return static_cast<bool>(migrator_);
  }

 private:
  friend class Component;
  friend class Link;
  friend class Clock;
  friend class ckpt::CheckpointEngine;  // captures/overlays engine state
  friend class ckpt::Migrator;          // moves components between ranks

  enum class State { kBuilding, kInitialized, kRunning, kDone };

  struct Connection {
    std::string comp_a, port_a, comp_b, port_b;
    SimTime latency_ab, latency_ba;
  };

  struct RankState {
    TimeVortex vortex;
    SimTime now = 0;
    std::uint64_t events = 0;
    // Incoming cross-rank events, locked by senders.
    std::mutex mailbox_mutex;
    std::vector<EventPtr> mailbox;
    // Outbound cross-rank staging, one buffer per destination rank.
    // Filled lock-free by this rank's thread while a sync window runs;
    // flushed with one mailbox lock per destination at the after_send
    // barrier.  Buffers keep their capacity across windows.
    std::vector<std::vector<EventPtr>> outbox;
    // drain_mailbox swaps the mailbox into this scratch vector under the
    // lock, so both vectors' capacities ping-pong between windows instead
    // of being reallocated every drain.
    std::vector<EventPtr> drain_scratch;
    std::uint64_t outbox_flushes = 0;  // non-empty per-destination flushes
    // Self-profiler gauges (mailbox count is always maintained — one add
    // per drain; barrier wait is measured under profile_engine and in
    // adaptive mode, where it feeds the window controller).
    std::uint64_t mailbox_received = 0;
    double barrier_wait_seconds = 0.0;
    // Lax mode: late cross-rank events this rank corrected forward, and
    // the largest correction it applied.
    std::uint64_t lax_stragglers = 0;
    SimTime lax_max_skew = 0;
  };

  // Component construction context.
  [[nodiscard]] std::string components_raw_name(ComponentId id) const;
  void begin_component(const std::string& name);
  Component* end_component(std::unique_ptr<Component> comp);
  void abort_component();
  static Simulation*& build_context();

  // Called by Component.
  Link* create_link(ComponentId owner, std::string_view port,
                    EventHandler handler, bool polling, bool optional);
  Link* create_self_link(ComponentId owner, std::string_view name,
                         SimTime latency, EventHandler handler);
  Clock* get_clock(RankId rank, SimTime period);
  void register_component_clock(ComponentId comp, SimTime period,
                                ClockHandler handler);
  void note_primary() { ++primary_count_; }
  void note_primary_ok() { ++primary_ok_count_; }

  // Called by Link / Clock on every send — defined inline so the whole
  // send -> vortex-insert chain compiles into the caller.
  void schedule(RankId src_rank, RankId dst_rank, EventPtr ev) {
    if (src_rank == dst_rank) {
      ranks_[dst_rank].vortex.insert(std::move(ev));
      return;
    }
    if (exchange_batching_) {
      // We are on src_rank's worker thread: stage locally, no lock.  The
      // whole buffer moves to dst's mailbox under one lock in
      // flush_outbox() at the end of the window.
      ranks_[src_rank].outbox[dst_rank].push_back(std::move(ev));
      return;
    }
    cross_rank_events_.fetch_add(1, std::memory_order_relaxed);
    RankState& dst = ranks_[dst_rank];
    std::lock_guard<std::mutex> lock(dst.mailbox_mutex);
    dst.mailbox.push_back(std::move(ev));
  }
  void schedule_local(RankId rank, EventPtr ev) {
    ranks_[rank].vortex.insert(std::move(ev));
  }
  [[nodiscard]] bool in_init_phase() const { return init_phase_active_; }
  void note_init_data_sent() { init_data_sent_ = true; }

  // Engine internals.
  void wire_links();
  /// Recomputes everything wire_links derives from component ranks (link
  /// owner/peer ranks, lookahead, cut-link count, per-rank min
  /// out-latency) after migrations changed the partition.  Runs at the
  /// sync barrier while every rank thread is parked.
  void refresh_partition();
  /// Rebalance check at the sync barrier (single-threaded, before the
  /// next horizon is computed — a migration can change the lookahead and
  /// the new window must honour it).  Builds per-component loads from
  /// comp_epoch_events_, asks the RebalanceController for a plan, and
  /// runs the installed migrator for each decision.
  void maybe_rebalance(SimTime global_min);
  void assign_ranks();
  void assign_ranks_mincut();
  void run_init_phases();
  void run_serial();
  void run_parallel();
  void rank_process_until(RankId me, SimTime horizon);
  void drain_mailbox(RankState& rank);
  /// Moves rank `me`'s staged outbound events into the destination
  /// mailboxes, one lock per non-empty destination buffer.  Called right
  /// before the after_send barrier, so every event is in its mailbox
  /// before any rank drains.
  void flush_outbox(RankId me);
  [[nodiscard]] bool primaries_done() const {
    const auto p = primary_count_.load(std::memory_order_acquire);
    return p > 0 && primary_ok_count_.load(std::memory_order_acquire) >= p;
  }
  void finish_components();

  /// Builds the per-rank diagnostic report (time, pending events, blocked
  /// primaries) attached to watchdog/deadlock SimulationErrors.
  [[nodiscard]] std::string diagnostic_report(const std::string& reason) const;

  // Checkpoint internals.
  /// Whether the simulated-time/wall-clock cadence is due at global next
  /// event time `t`; arms the first period mark lazily so a restarted run
  /// reproduces the uninterrupted run's checkpoint schedule exactly.
  [[nodiscard]] bool checkpoint_due(SimTime t, bool check_wall);
  /// Runs the installed writer, suspending the watchdog for the duration
  /// (the write's wall time is credited back to the budget).  noexcept:
  /// a failed write warns and the run continues.
  void take_checkpoint() noexcept;

  // Observability internals (src/obs).
  class ObsResolver;
  /// Creates the tracer/collector, registers engine sampling clocks and
  /// self-profiler statistics.  Part of initialize().
  void setup_observability();
  /// Maps each component to its registered statistics (done at run()
  /// start, after setup(), so late-registered statistics are included).
  void build_metrics_index();
  /// One metrics snapshot of every stat-bearing component on `rank`
  /// (called from that rank's sampling clock).
  void sample_metrics(RankId rank);
  /// Folds per-rank gauges into the engine.rankN statistics.
  void finalize_engine_stats(double wall_seconds);
  /// Writes trace/metrics files if configured.  `nothrow` swallows I/O
  /// errors (used on the watchdog/deadlock paths so the original error
  /// propagates).
  void flush_observability(bool nothrow);
  // Trace hooks (cheap no-ops when tracing is off).
  void trace_clock_dispatch(RankId rank, SimTime t, ComponentId comp,
                            Cycle cycle);
  void trace_marker(RankId rank, SimTime t, ComponentId comp,
                    std::uint64_t seq, const std::string& name,
                    const std::string& detail);

  SimConfig config_;
  State state_ = State::kBuilding;

  std::vector<std::unique_ptr<Component>> components_;
  std::map<std::string, ComponentId, std::less<>> component_names_;
  std::vector<std::unique_ptr<Link>> links_;
  // (component, port) -> link endpoint
  std::map<std::pair<ComponentId, std::string>, Link*> ports_;
  std::vector<Connection> connections_;
  std::map<std::string, RankId, std::less<>> pinned_ranks_;

  std::vector<RankState> ranks_;
  std::map<std::pair<RankId, SimTime>, std::unique_ptr<Clock>> clocks_;

  StatisticsRegistry stats_;

  std::atomic<std::uint32_t> primary_count_{0};
  std::atomic<std::uint32_t> primary_ok_count_{0};
  std::atomic<std::uint64_t> cross_rank_events_{0};
  // Set by the watchdog thread; run loops poll it every 1024 events so the
  // check costs nothing measurable on the hot path.
  std::atomic<bool> watchdog_fired_{false};

  SimTime lookahead_ = kTimeNever;
  std::uint64_t cut_links_ = 0;
  // Per-rank minimum latency over cross-rank links whose *sending*
  // endpoint lives on that rank (kTimeNever when the rank has none).
  // next_time(r) + rank_min_out_[r] bounds rank r's earliest possible
  // future influence on any other rank — the exact causal cap adaptive
  // windows respect.
  std::vector<SimTime> rank_min_out_;
  // True while a lax-mode parallel run is in flight: drain_mailbox
  // applies bounded timestamp corrections to late events.  Only toggled
  // while the engine is single-threaded.
  bool lax_active_ = false;
  RunStats run_stats_;
  // True while the parallel worker loops run: cross-rank sends stage in
  // the sender's outbox instead of locking the destination mailbox.
  // Only toggled while the engine is single-threaded (before workers
  // start / after they join), so a plain bool is race-free.
  bool exchange_batching_ = false;

  // Observability state (null unless enabled in SimConfig).
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::MetricsCollector> metrics_;
  // Per-component statistics index for metrics sampling.
  std::vector<std::vector<const Statistic*>> metrics_stats_;
  // Self-profiler statistics, one set per rank (profile_engine only).
  struct EngineStats {
    Counter* events = nullptr;
    Counter* mailbox = nullptr;
    Counter* pool_allocs = nullptr;
    Counter* pool_recycles = nullptr;
    Counter* exchange_flushes = nullptr;
    Accumulator* vortex_depth = nullptr;
    Accumulator* barrier_wait = nullptr;
    Accumulator* events_per_sec = nullptr;
  };
  std::vector<EngineStats> engine_stats_;

  // Clocks registered during construction, created once ranks are known.
  struct PendingClock {
    ComponentId comp;
    SimTime period;
    ClockHandler handler;
  };
  std::vector<PendingClock> pending_clocks_;

  // Checkpoint state (src/ckpt installs the writer; the engine owns the
  // cadence so serial and parallel runs trigger at deterministic points).
  std::function<void(Simulation&)> ckpt_writer_;
  SimTime ckpt_next_mark_ = kTimeNever;  // lazily armed from first event
  std::chrono::steady_clock::time_point ckpt_last_wall_{};
  // Watchdog suspension: wall time spent writing checkpoints is added
  // back to the watchdog budget, and an in-progress write defers expiry.
  std::atomic<std::uint64_t> ckpt_pause_ns_{0};
  std::atomic<bool> ckpt_writing_{false};
  std::uint64_t ckpt_taken_ = 0;
  double ckpt_write_seconds_ = 0.0;
  // Sync windows carried over from the run this one was restored from.
  std::uint64_t ckpt_windows_base_ = 0;
  // Self-profiler statistics for the pause/resume window (profile_engine).
  Counter* ckpt_count_stat_ = nullptr;
  Accumulator* ckpt_write_stat_ = nullptr;

  // Online-rebalancing state (ckpt::Migrator does the actual moves).
  std::function<void(Simulation&, ComponentId, RankId)> migrator_;
  std::unique_ptr<RebalanceController> rebalance_ctl_;
  // True while a rebalancing parallel run is in flight: event delivery
  // and clock dispatch attribute per-component epoch counts.  Only
  // toggled while the engine is single-threaded.
  bool rebalance_accounting_ = false;
  // LinkId -> component whose handler the event drives (the receiving
  // endpoint's owner).  Built in wire_links; migration never changes it
  // (Link objects and their owners are immutable — only ranks move).
  std::vector<ComponentId> link_target_;
  // Per-component event counts over the current epoch group.  Each slot
  // is written only by the owning rank's thread during a window and read
  // at the barrier, so no synchronization is needed beyond the barrier
  // itself.  Checkpointed: a resumed run reproduces the migration
  // schedule.
  std::vector<std::uint64_t> comp_epoch_events_;
  // Per-rank events marks from the previous epoch (profile-only: feeds
  // the engine.sync imbalance_ratio stat and metrics JSONL).
  std::vector<std::uint64_t> rank_epoch_mark_;
  // A migration failure detected inside the (noexcept) barrier
  // completion parks here; run_parallel rethrows it after the workers
  // join.  An inconsistent partition cannot continue.
  std::string rebalance_error_;
  std::uint64_t rebalance_epoch_ = 0;  // epochs since last check (ckpt'd)
  std::uint64_t rebalances_ = 0;       // passes that moved >= 1 component
  std::uint64_t comps_migrated_ = 0;   // total cross-rank moves
  // engine.rebalance statistics (profile_engine && rebalance && R > 1).
  Counter* rebalance_count_stat_ = nullptr;
  Counter* rebalance_moved_stat_ = nullptr;
  Accumulator* imb_before_stat_ = nullptr;
  Accumulator* imb_after_stat_ = nullptr;
  // engine.sync imbalance_ratio (profile_engine && R > 1, any mode).
  Accumulator* imbalance_stat_ = nullptr;

  // Lax-mode accuracy contract block (engine.lax statistics).  Created
  // whenever a parallel lax run is configured — not gated on
  // profile_engine, because the straggler count and max observed skew are
  // the run's accuracy report, not a profiling detail.
  Counter* lax_straggler_stat_ = nullptr;
  Accumulator* lax_skew_stat_ = nullptr;
  // Adaptive-mode window trace (profile_engine only): one sample per
  // sync epoch, in picoseconds.
  Accumulator* window_stat_ = nullptr;

  // Construction bookkeeping.
  std::string pending_name_;
  bool constructing_ = false;
  bool init_phase_active_ = false;
  bool init_data_sent_ = false;
};

}  // namespace sst
