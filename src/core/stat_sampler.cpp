#include "core/stat_sampler.h"

#include <algorithm>
#include <ostream>

#include "ckpt/serializer.h"
#include "core/simulation.h"

namespace sst {

StatSampler::StatSampler(Params& params) {
  period_ = params.find_period("period", "10us");
  component_filters_ = params.find_array<std::string>("components");
  field_filter_ = params.find_array<std::string>("fields");
  if (field_filter_.empty()) {
    field_filter_ = {"count", "sum"};
  }
  register_clock(period_, [this](Cycle c) { return tick(c); });
}

bool StatSampler::matches(const Statistic& stat) const {
  if (component_filters_.empty()) return true;
  for (const auto& prefix : component_filters_) {
    if (stat.component().rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void StatSampler::setup() {
  // All components exist by now; discover the columns once.
  for (const auto& stat : sim().stats().all()) {
    if (!matches(*stat)) continue;
    if (stat->component() == name()) continue;  // don't sample ourselves
    for (const auto& field : stat->fields()) {
      if (std::find(field_filter_.begin(), field_filter_.end(),
                    field.name) == field_filter_.end()) {
        continue;
      }
      tracked_.push_back(stat.get());
      tracked_field_.push_back(field.name);
      columns_.push_back(stat->component() + "." + stat->name() + "." +
                         field.name);
    }
  }
}

bool StatSampler::tick(Cycle /*cycle*/) {
  Sample s;
  s.time = now();
  s.values.reserve(tracked_.size());
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    double v = 0.0;
    for (const auto& field : tracked_[i]->fields()) {
      if (field.name == tracked_field_[i]) {
        v = field.value;
        break;
      }
    }
    s.values.push_back(v);
  }
  samples_.push_back(std::move(s));
  return false;  // sample until the simulation ends
}

double StatSampler::delta(std::size_t column, std::size_t sample) const {
  if (column >= columns_.size() || sample >= samples_.size()) {
    throw ConfigError("StatSampler::delta: index out of range");
  }
  const double now_v = samples_[sample].values[column];
  const double prev_v =
      sample == 0 ? 0.0 : samples_[sample - 1].values[column];
  return now_v - prev_v;
}

void StatSampler::write_csv(std::ostream& os) const {
  os << "time_ps";
  for (const auto& c : columns_) os << "," << csv_escape(c);
  os << "\n";
  for (const auto& s : samples_) {
    os << s.time;
    for (double v : s.values) os << "," << v;
    os << "\n";
  }
}

void StatSampler::Sample::ckpt_io(ckpt::Serializer& s) {
  s & time & values;
}

void StatSampler::serialize_state(ckpt::Serializer& s) { s & samples_; }

}  // namespace sst
