// Factory: builds components by registered string name ("mem.Cache",
// "proc.Core", ...), the mechanism behind configuration-file-driven
// simulations (SST's element-library loading, minus dlopen).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/params.h"
#include "core/types.h"

namespace sst {

class Component;
class Simulation;

/// One declared parameter of a registered component type: the knob name,
/// a one-line description, and the default ("" = required).  Element
/// libraries attach these via Factory::describe_params so configuration
/// authors (and DSE sweep axes) can discover what is overridable without
/// reading the model source.
struct ParamDoc {
  std::string name;
  std::string description;
  std::string default_value;
};

class Factory {
 public:
  using Builder = std::function<Component*(Simulation&, const std::string&,
                                           Params&)>;

  /// Process-wide factory instance (element libraries self-register into
  /// it from static initializers).
  static Factory& instance();

  /// Registers a builder under "library.Name".  Duplicate registration of
  /// the same name is a programming error.
  void register_component(const std::string& type, Builder builder);

  /// True when a builder exists for the type.
  [[nodiscard]] bool known(const std::string& type) const;

  /// Creates a component of the registered type inside `sim`.
  Component* create(Simulation& sim, const std::string& type,
                    const std::string& name, Params& params) const;

  /// All registered type names, sorted.
  [[nodiscard]] std::vector<std::string> registered_types() const;

  /// Attaches parameter documentation to an already-registered type
  /// (sstsim --list-components prints it).  Unknown type or duplicate
  /// documentation is a programming error.
  void describe_params(const std::string& type, std::vector<ParamDoc> docs);

  /// Declared parameters for the type; nullptr when none were attached.
  [[nodiscard]] const std::vector<ParamDoc>* param_docs(
      const std::string& type) const;

 private:
  std::map<std::string, Builder> builders_;
  std::map<std::string, std::vector<ParamDoc>> param_docs_;
};

/// Helper used by the registration macro.
template <typename T>
struct ComponentRegistrar {
  explicit ComponentRegistrar(const std::string& type);
};

}  // namespace sst

#include "core/simulation.h"

namespace sst {
template <typename T>
ComponentRegistrar<T>::ComponentRegistrar(const std::string& type) {
  Factory::instance().register_component(
      type,
      [](Simulation& sim, const std::string& name, Params& p) -> Component* {
        return sim.add_component<T>(name, p);
      });
}
}  // namespace sst

/// Registers a Component subclass with constructor signature (Params&)
/// under the given type string, e.g.:
///   SST_REGISTER_COMPONENT(my::Cache, "mem.Cache");
#define SST_REGISTER_COMPONENT(cls, type_string)                            \
  static const ::sst::ComponentRegistrar<cls> sst_registrar_##cls_instance( \
      type_string)
