// Synchronization policy for the parallel engine: the sync-mode contract
// and the adaptive window controller.
//
// The parallel engine (Simulation::run_parallel) advances in sync epochs:
// every rank processes events below a shared horizon, then all ranks
// barrier and exchange cross-rank events.  How that horizon is chosen is
// the synchronization mode:
//
//   * kConservative — horizon = global minimum next event time + the
//     minimum cross-rank link latency (the lookahead).  Classic
//     conservative PDES; byte-identical to the serial engine and the
//     mode every golden digest is pinned against.  The default.
//
//   * kAdaptive — still conservative (no event is ever processed before
//     everything that could affect it has arrived), but the window is
//     chosen per epoch by the AdaptiveWindowController below and capped
//     by the *exact* causal bound
//
//         safe = min over ranks r of (next event time of r
//                                     + min cross-rank out-latency of r)
//
//     which is never smaller than the conservative horizon.  When some
//     ranks are idle or far in the future (compute phases, drained
//     partitions) the window grows and barriers collapse; on saturated
//     workloads it degenerates to conservative.  Model-visible results
//     are identical to conservative; only the barrier cadence (an engine
//     counter) adapts to measured barrier overhead, i.e. to wall clock.
//
//   * kLax — opt-in accuracy/throughput trade: the horizon is extended by
//     a configured skew beyond the conservative bound, so ranks may run
//     ahead of incoming cross-rank traffic.  A late ("straggler") event
//     that arrives with a timestamp the receiving rank has already passed
//     is applied with a bounded timestamp correction (forwarded to the
//     rank's current time; the correction is provably < the configured
//     skew).  Deterministic run-to-run — the horizon formula uses no wall
//     clock — but not byte-identical to conservative.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sst {

/// How the parallel engine chooses sync-window horizons.  Serial runs
/// (num_ranks == 1) ignore the mode entirely.
enum class SyncMode {
  kConservative,  // fixed lookahead window (default, golden-pinned)
  kAdaptive,      // controller-sized window, capped by the causal bound
  kLax,           // lookahead + configured skew, bounded corrections
};

[[nodiscard]] const char* sync_mode_name(SyncMode mode);

/// What one sync epoch looked like, as fed to the adaptive controller.
struct SyncEpochStats {
  /// Fraction of the epoch's wall time the ranks spent parked in
  /// barriers, averaged over ranks; in [0, 1].  High values mean the
  /// window is too small for the available work (sync-bound).
  double barrier_wait_fraction = 0.0;
  /// Events retired across all ranks during the epoch.  Zero means the
  /// epoch was pure synchronization overhead.
  std::uint64_t events_processed = 0;
  /// Total pending events across all rank vortices after the epoch.
  std::uint64_t vortex_depth = 0;
};

/// Pure multiplicative-increase / multiplicative-decrease controller for
/// the adaptive sync window.  Deliberately a pure function of its inputs
/// (no wall clock, no globals) so its contract is property-testable:
///
///   * clamping     — the window always lies in [min_window, max_window];
///   * monotonicity — with the other inputs fixed, a higher barrier-wait
///     fraction never yields a smaller next window;
///   * convergence  — under constant epoch stats the window reaches a
///     fixed point within log2(max/min) + 1 updates and stays there.
///
/// The engine clamps min_window to the lookahead, so the controller can
/// never choose a window below the conservative one, and the causal cap
/// in compute_sync keeps any choice safe.
class AdaptiveWindowController {
 public:
  /// Grow when barriers eat at least this fraction of an epoch.
  static constexpr double kGrowThreshold = 0.20;
  /// Shrink when barriers cost less than this fraction (window larger
  /// than the workload needs; smaller windows bound straggler latency
  /// and vortex growth).
  static constexpr double kShrinkThreshold = 0.02;
  /// Multiplicative step for both directions.
  static constexpr SimTime kStepFactor = 2;

  /// Throws ConfigError unless 1 <= min_window <= max_window.
  AdaptiveWindowController(SimTime min_window, SimTime max_window);

  /// Current window (starts at min_window: adaptive mode begins exactly
  /// conservative and earns larger windows from evidence).
  [[nodiscard]] SimTime window() const { return window_; }
  [[nodiscard]] SimTime min_window() const { return min_window_; }
  [[nodiscard]] SimTime max_window() const { return max_window_; }

  /// Feeds one epoch's stats and returns the window for the next epoch.
  SimTime update(const SyncEpochStats& stats);

 private:
  SimTime min_window_;
  SimTime max_window_;
  SimTime window_;
};

/// Tuning for the online rebalancer (SimConfig::rebalance*).  In lax
/// mode the engine derives a more aggressive variant (halved threshold
/// margin and period, doubled move budget) — lax already trades strict
/// reproducibility for throughput, so it may chase imbalance harder.
struct RebalanceConfig {
  /// Fire when max/mean per-rank epoch event rate reaches this ratio.
  double threshold = 1.5;
  /// Sync epochs between imbalance checks.
  std::uint64_t period = 8;
  /// Components migrated per rebalance at most.
  std::uint32_t max_moves = 8;
  /// Ignore epoch groups that retired fewer events than this (startup,
  /// drained phases): too little signal to justify moving state.
  std::uint64_t min_events = 256;
};

/// One component's event count over the last epoch group, as fed to the
/// rebalance controller.  Entries must be in ComponentId order.
struct ComponentLoad {
  ComponentId comp = kInvalidComponent;
  RankId rank = 0;
  std::uint64_t events = 0;
};

/// A planned migration: move `comp` from rank `from` to rank `to`.
struct MigrationDecision {
  ComponentId comp = kInvalidComponent;
  RankId from = 0;
  RankId to = 0;
};

/// Deterministic greedy rebalance planner.  A pure function of the
/// per-component epoch event counts and component ids — no wall clock,
/// no RNG — so that in conservative mode (where epoch boundaries are
/// themselves deterministic) the entire migration schedule is
/// reproducible run to run, and in every mode the decision never
/// depends on which rank measured what first.  Property-tested
/// (tests/core/test_rebalance.cpp):
///
///   * no-op below threshold — plan() is empty unless max/mean rank
///     load reaches `threshold` and the group retired >= `min_events`;
///   * bounded          — at most `max_moves` decisions per plan;
///   * improving        — each move shrinks the hot/cold gap and never
///     overshoots (the moved load is <= half the gap);
///   * deterministic    — ties break on lowest rank id / component id.
class RebalanceController {
 public:
  /// Throws ConfigError unless threshold > 1, period >= 1,
  /// max_moves >= 1.
  RebalanceController(RebalanceConfig cfg, std::uint32_t num_ranks);

  [[nodiscard]] const RebalanceConfig& config() const { return cfg_; }

  /// max/mean of the per-rank totals (0 when no events at all).
  [[nodiscard]] static double imbalance(
      const std::vector<std::uint64_t>& per_rank);

  /// Plans migrations for one epoch group.  `loads` holds every
  /// component's events over the group, in ComponentId order.
  [[nodiscard]] std::vector<MigrationDecision> plan(
      const std::vector<ComponentLoad>& loads) const;

 private:
  RebalanceConfig cfg_;
  std::uint32_t num_ranks_;
};

}  // namespace sst
