#include "core/unit_algebra.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace sst {

SimTime frequency_to_period(double hz) {
  if (hz <= 0.0) throw ConfigError("frequency must be positive");
  const double period = 1e12 / hz;
  const double rounded = std::llround(period) < 1 ? 1.0 : std::round(period);
  return static_cast<SimTime>(rounded);
}

double period_to_frequency(SimTime period_ps) {
  if (period_ps == 0) throw ConfigError("period must be positive");
  return 1e12 / static_cast<double>(period_ps);
}

Units Units::operator*(const Units& o) const {
  Units r;
  for (size_t i = 0; i < exp.size(); ++i)
    r.exp[i] = static_cast<int8_t>(exp[i] + o.exp[i]);
  return r;
}

Units Units::operator/(const Units& o) const {
  Units r;
  for (size_t i = 0; i < exp.size(); ++i)
    r.exp[i] = static_cast<int8_t>(exp[i] - o.exp[i]);
  return r;
}

Units Units::inverted() const {
  Units r;
  for (size_t i = 0; i < exp.size(); ++i) r.exp[i] = static_cast<int8_t>(-exp[i]);
  return r;
}

std::string Units::to_string() const {
  static const char* names[] = {"s", "B", "b", "events", "W", "$"};
  std::string num, den;
  for (size_t i = 0; i < exp.size(); ++i) {
    if (exp[i] == 0) continue;
    std::string piece = names[i];
    const int mag = std::abs(exp[i]);
    if (mag > 1) piece += "^" + std::to_string(mag);
    if (exp[i] > 0) {
      if (!num.empty()) num += "*";
      num += piece;
    } else {
      if (!den.empty()) den += "*";
      den += piece;
    }
  }
  if (num.empty() && den.empty()) return "";
  if (den.empty()) return num;
  // Denominator-only units print with a leading slash ("2 /s"), which the
  // parser accepts; "1/s" would glue onto the magnitude after whitespace
  // stripping ("2 1/s" -> "21/s") and reparse as a different value.
  if (num.empty()) return "/" + den;
  return num + "/" + den;
}

namespace {

struct UnitDef {
  double scale;
  Units units;
};

Units make_units(int si) {
  Units u;
  u.exp[si] = 1;
  return u;
}

// Table of base unit suffixes (after any SI/binary prefix is removed).
const std::map<std::string, UnitDef, std::less<>>& unit_table() {
  static const std::map<std::string, UnitDef, std::less<>> table = [] {
    std::map<std::string, UnitDef, std::less<>> t;
    const Units sec = make_units(Units::kSeconds);
    const Units bytes = make_units(Units::kBytes);
    const Units bits = make_units(Units::kBits);
    const Units events = make_units(Units::kEvents);
    const Units watts = make_units(Units::kWatts);
    const Units dollars = make_units(Units::kDollars);
    t["s"] = {1.0, sec};
    t["B"] = {1.0, bytes};
    t["b"] = {1.0, bits};
    t["Hz"] = {1.0, events / sec};
    t["hz"] = {1.0, events / sec};
    t["W"] = {1.0, watts};
    t["J"] = {1.0, watts * sec};
    t["$"] = {1.0, dollars};
    t["USD"] = {1.0, dollars};
    t["events"] = {1.0, events};
    t["event"] = {1.0, events};
    t["flops"] = {1.0, events / sec};
    t["FLOPS"] = {1.0, events / sec};
    return t;
  }();
  return table;
}

// SI and binary prefixes.  Binary prefixes (Ki/Mi/Gi/...) are only legal in
// front of bytes or bits; that check happens in the parser.
struct Prefix {
  const char* text;
  double scale;
  bool binary;
};

constexpr Prefix kPrefixes[] = {
    {"Ki", 1024.0, true},
    {"Mi", 1024.0 * 1024.0, true},
    {"Gi", 1024.0 * 1024.0 * 1024.0, true},
    {"Ti", 1024.0 * 1024.0 * 1024.0 * 1024.0, true},
    {"Pi", 1024.0 * 1024.0 * 1024.0 * 1024.0 * 1024.0, true},
    {"k", 1e3, false},  {"K", 1e3, false},  {"M", 1e6, false},
    {"G", 1e9, false},  {"T", 1e12, false}, {"P", 1e15, false},
    {"m", 1e-3, false}, {"u", 1e-6, false}, {"n", 1e-9, false},
    {"p", 1e-12, false}, {"f", 1e-15, false},
};

// Parses one unit token, e.g. "GHz", "KiB", "ns", "W", "s^2".
UnitDef parse_unit_token(std::string_view tok, std::string_view full) {
  // Integer exponent suffix, as printed by Units::to_string ("s^2").
  int expn = 1;
  if (const auto caret = tok.find('^'); caret != std::string_view::npos) {
    const std::string digits(tok.substr(caret + 1));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw ConfigError("bad unit exponent in '" + std::string(full) + "'");
    }
    expn = std::atoi(digits.c_str());
    if (expn < 1 || expn > 8) {
      throw ConfigError("unit exponent out of range in '" +
                        std::string(full) + "'");
    }
    tok = tok.substr(0, caret);
  }
  auto apply_exponent = [expn](UnitDef def) {
    UnitDef out{1.0, Units{}};
    for (int n = 0; n < expn; ++n) {
      out.scale *= def.scale;
      out.units = out.units * def.units;
    }
    return out;
  };

  const auto& table = unit_table();
  // Exact match first ("s", "B", "b", "Hz", ...).
  if (auto it = table.find(tok); it != table.end()) {
    return apply_exponent(it->second);
  }
  // Try prefix + unit.
  for (const auto& p : kPrefixes) {
    const std::string_view pt = p.text;
    if (tok.size() > pt.size() && tok.substr(0, pt.size()) == pt) {
      auto rest = tok.substr(pt.size());
      if (auto it = table.find(rest); it != table.end()) {
        if (p.binary) {
          const bool is_data = it->second.units == make_units(Units::kBytes) ||
                               it->second.units == make_units(Units::kBits);
          if (!is_data)
            throw ConfigError("binary prefix only valid for bytes/bits in '" +
                              std::string(full) + "'");
        }
        return apply_exponent({p.scale * it->second.scale, it->second.units});
      }
    }
  }
  throw ConfigError("unknown unit '" + std::string(tok) + "' in '" +
                    std::string(full) + "'");
}

}  // namespace

UnitAlgebra::UnitAlgebra(std::string_view text) {
  // Strip whitespace.
  std::string s;
  s.reserve(text.size());
  for (char c : text)
    if (!std::isspace(static_cast<unsigned char>(c))) s.push_back(c);
  if (s.empty()) throw ConfigError("empty quantity string");

  // Numeric part.
  size_t pos = 0;
  {
    const char* begin = s.c_str();
    char* end = nullptr;
    value_ = std::strtod(begin, &end);
    if (end == begin) throw ConfigError("no numeric value in '" + s + "'");
    pos = static_cast<size_t>(end - begin);
  }

  // Unit part: tokens separated by '*' and '/' (single-level, left to
  // right, e.g. "GB/s", "B/s/s" not supported beyond repeated division).
  double scale = 1.0;
  Units units;
  bool divide = false;
  size_t i = pos;
  // A leading '/' means "per" — denominator-only quantities ("2 /s")
  // print this way.
  if (i < s.size() && s[i] == '/') {
    divide = true;
    ++i;
  }
  while (i < s.size()) {
    size_t j = i;
    while (j < s.size() && s[j] != '/' && s[j] != '*') ++j;
    const std::string_view tok(s.data() + i, j - i);
    if (tok.empty()) throw ConfigError("malformed unit in '" + s + "'");
    const UnitDef def = parse_unit_token(tok, s);
    if (divide) {
      scale /= def.scale;
      units = units / def.units;
    } else {
      scale *= def.scale;
      units = units * def.units;
    }
    if (j < s.size()) divide = (s[j] == '/');
    i = j + 1;
  }
  value_ *= scale;
  units_ = units;
}

std::uint64_t UnitAlgebra::rounded() const {
  if (value_ < 0.0) throw ConfigError("negative value where count expected");
  if (value_ > 1.8e19) throw ConfigError("value too large for uint64");
  return static_cast<std::uint64_t>(std::llround(value_));
}

bool UnitAlgebra::has_units_of(std::string_view example) const {
  return units_ == UnitAlgebra(example).units();
}

SimTime UnitAlgebra::to_simtime() const {
  if (!has_units_of("1s"))
    throw ConfigError("expected a time quantity, got '" + to_string() + "'");
  const double ps = value_ * 1e12;
  if (ps < 0 || ps > 1.8e19)
    throw ConfigError("time out of range: " + to_string());
  return static_cast<SimTime>(std::llround(ps));
}

SimTime UnitAlgebra::to_period() const {
  if (has_units_of("1s")) return to_simtime();
  if (has_units_of("1Hz")) {
    if (value_ <= 0) throw ConfigError("frequency must be positive");
    return frequency_to_period(value_);
  }
  // Bare 1/s is also accepted.
  Units inv_sec;
  inv_sec.exp[Units::kSeconds] = -1;
  if (units_ == inv_sec) return frequency_to_period(value_);
  throw ConfigError("expected a frequency or period, got '" + to_string() +
                    "'");
}

std::uint64_t UnitAlgebra::to_bytes() const {
  if (!has_units_of("1B"))
    throw ConfigError("expected a byte count, got '" + to_string() + "'");
  return rounded();
}

double UnitAlgebra::to_bytes_per_second() const {
  if (has_units_of("1B/s")) return value_;
  if (has_units_of("1b/s")) return value_ / 8.0;
  throw ConfigError("expected a bandwidth, got '" + to_string() + "'");
}

UnitAlgebra& UnitAlgebra::operator+=(const UnitAlgebra& o) {
  if (units_ != o.units_)
    throw ConfigError("unit mismatch in addition: '" + to_string() +
                      "' + '" + o.to_string() + "'");
  value_ += o.value_;
  return *this;
}

UnitAlgebra& UnitAlgebra::operator-=(const UnitAlgebra& o) {
  if (units_ != o.units_)
    throw ConfigError("unit mismatch in subtraction: '" + to_string() +
                      "' - '" + o.to_string() + "'");
  value_ -= o.value_;
  return *this;
}

UnitAlgebra& UnitAlgebra::operator*=(const UnitAlgebra& o) {
  value_ *= o.value_;
  units_ = units_ * o.units_;
  return *this;
}

UnitAlgebra& UnitAlgebra::operator/=(const UnitAlgebra& o) {
  if (o.value_ == 0.0) throw ConfigError("division by zero quantity");
  value_ /= o.value_;
  units_ = units_ / o.units_;
  return *this;
}

UnitAlgebra UnitAlgebra::inverted() const {
  if (value_ == 0.0) throw ConfigError("cannot invert zero quantity");
  return UnitAlgebra(1.0 / value_, units_.inverted());
}

bool UnitAlgebra::operator<(const UnitAlgebra& o) const {
  if (units_ != o.units_)
    throw ConfigError("unit mismatch in comparison");
  return value_ < o.value_;
}

bool UnitAlgebra::operator>(const UnitAlgebra& o) const {
  if (units_ != o.units_)
    throw ConfigError("unit mismatch in comparison");
  return value_ > o.value_;
}

bool UnitAlgebra::operator==(const UnitAlgebra& o) const {
  return units_ == o.units_ && value_ == o.value_;
}

std::string UnitAlgebra::to_string() const {
  // Shortest decimal form that parses back to exactly the same double, so
  // print -> parse is a lossless round trip.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.15g", value_);
  if (std::strtod(buf, nullptr) != value_) {
    std::snprintf(buf, sizeof buf, "%.16g", value_);
    if (std::strtod(buf, nullptr) != value_) {
      std::snprintf(buf, sizeof buf, "%.17g", value_);
    }
  }
  std::string out = buf;
  const std::string u = units_.to_string();
  if (!u.empty()) {
    out += " ";
    out += u;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const UnitAlgebra& ua) {
  return os << ua.to_string();
}

}  // namespace sst
