// EventPool: bounded free-list recycling for high-churn event types.
//
// Clock ticks are pooled by Clock's one-slot spare (see clock.h); this is
// the general-purpose version for model traffic that sends the same event
// type millions of times (memory requests, network flits).  acquire()
// reuses a previously released instance when one is available and
// allocates otherwise; release() parks an instance for reuse up to the
// configured capacity, beyond which it is simply destroyed.
//
// Recycled events keep stale engine ordering fields (delivery time,
// source id, sequence); that is safe because Link::send re-stamps every
// field when the event is next sent.  A recycled event must therefore be
// re-sent, never inspected, after acquire().
//
// Pools are per-component (hence per-rank) objects: they are not thread
// safe, matching the engine rule that a component's events are only
// touched from its own partition's thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace sst {

template <typename T>
class EventPool {
 public:
  /// `capacity` bounds how many released events are kept for reuse; the
  /// default suits request/response protocols with small in-flight
  /// windows.
  explicit EventPool(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Returns a ready-to-send event.  When a pooled instance is available
  /// it is re-initialized via T::reset(args...); otherwise a fresh T is
  /// constructed with the same arguments.
  template <typename... Args>
  [[nodiscard]] std::unique_ptr<T> acquire(Args&&... args) {
    if (free_.empty()) {
      ++allocs_;
      return std::make_unique<T>(std::forward<Args>(args)...);
    }
    std::unique_ptr<T> ev = std::move(free_.back());
    free_.pop_back();
    ev->reset(std::forward<Args>(args)...);
    ++recycles_;
    return ev;
  }

  /// Parks an event for reuse (or destroys it when the pool is full).
  /// Only events whose ownership has fully returned to the model — e.g.
  /// a consumed response — may be released; events still referenced by
  /// the engine must not be.
  void release(std::unique_ptr<T> ev) {
    if (ev == nullptr) return;
    if (free_.size() < capacity_) {
      free_.push_back(std::move(ev));
      return;
    }
    ev.reset();  // pool full: let it die
    ++overflow_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return free_.size(); }

  /// Pool traffic counters, mirroring Clock's tick-pool accounting:
  /// allocs + recycles equals the number of acquire() calls.
  [[nodiscard]] std::uint64_t allocs() const { return allocs_; }
  [[nodiscard]] std::uint64_t recycles() const { return recycles_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

 private:
  std::size_t capacity_;
  std::vector<std::unique_ptr<T>> free_;
  std::uint64_t allocs_ = 0;
  std::uint64_t recycles_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace sst
