// Umbrella header for the SST-repro core library.
//
// Quickstart:
//
//   #include "core/sst.h"
//
//   class Ping final : public sst::Component {
//    public:
//     explicit Ping(sst::Params& p) {
//       link_ = configure_link("port", [this](sst::EventPtr ev) {
//         link_->send(std::move(ev));   // bounce it back
//       });
//       ...
//     }
//    private:
//     sst::Link* link_;
//   };
//
//   sst::Simulation sim;
//   sst::Params p;
//   sim.add_component<Ping>("ping", p);
//   ...
//   sim.connect("ping", "port", "pong", "port", sst::kNanosecond);
//   sim.run();
#pragma once

#include "core/clock.h"
#include "core/component.h"
#include "core/event.h"
#include "core/event_pool.h"
#include "core/link.h"
#include "core/params.h"
#include "core/rng.h"
#include "core/simulation.h"
#include "core/stat_sampler.h"
#include "core/statistics.h"
#include "core/time_vortex.h"
#include "core/types.h"
#include "core/unit_algebra.h"
