#include "core/clock.h"

#include <algorithm>
#include <utility>

#include "core/simulation.h"

namespace sst {

namespace {
/// Engine-internal event carrying a clock tick.
class ClockTickEvent final : public Event {};
}  // namespace

Clock::Clock(Simulation& sim, RankId rank, SimTime period)
    : sim_(&sim), rank_(rank), period_(period) {
  if (period_ == 0) throw ConfigError("clock period must be >= 1ps");
  tick_handler_ = [this](EventPtr ev) {
    const SimTime now = ev->delivery_time();
    // Recycle in place: the consumed tick returns to the spare slot
    // before dispatch, so a schedule_next() from tick() (or from a
    // handler re-registering) reuses it instead of allocating.
    spare_tick_ = std::move(ev);
    tick(now);
  };
}

void Clock::add_handler(ComponentId comp, ClockHandler h) {
  if (!h) throw ConfigError("null clock handler");
  handlers_.push_back({comp, std::move(h)});
  if (!scheduled_) schedule_next(sim_->rank_now(rank_));
}

void Clock::schedule_next(SimTime now) {
  // First tick strictly after `now`, aligned to multiples of the period.
  const Cycle next_cycle = now / period_ + 1;
  EventPtr ev;
  if (spare_tick_ != nullptr) {
    ev = std::move(spare_tick_);
    ++tick_recycles_;
  } else {
    ev = std::make_unique<ClockTickEvent>();
    ++tick_allocs_;
  }
  ev->delivery_time_ = next_cycle * period_;
  ev->priority_ = Event::kPriorityClock;
  ev->handler_ = &tick_handler_;
  // Deterministic tie-break among same-time clock ticks: order clocks by
  // period (unique per rank), independent of creation order.
  ev->link_id_ = Event::kClockSourceBase |
                 static_cast<LinkId>(period_ & 0x7FFF'FFFFU);
  ev->order_ = next_cycle;
  cycle_ = next_cycle;
  scheduled_ = true;
  sim_->schedule_local(rank_, std::move(ev));
}

void Clock::tick(SimTime now) {
  scheduled_ = false;
  ++ticks_;
  const Cycle cycle = cycle_;
  // One tracer check per tick, not per handler (the flag cannot change
  // mid-run).
  const bool tracing = sim_->tracing();
  // Rebalance accounting: a tick's work is attributed to each component
  // that handles it (flag only toggled while the engine is
  // single-threaded; the counters are per-component, owned by this
  // clock's rank).
  const bool account = sim_->rebalance_accounting_;
  // Dispatch in registration order; drop handlers that return true.
  // A handler may register new clocks/handlers while running, so index
  // rather than iterate.
  std::size_t i = 0;
  while (i < handlers_.size()) {
    if (tracing && handlers_[i].comp != kInvalidComponent) {
      sim_->trace_clock_dispatch(rank_, now, handlers_[i].comp, cycle);
    }
    if (account && handlers_[i].comp != kInvalidComponent) {
      ++sim_->comp_epoch_events_[handlers_[i].comp];
    }
    const bool done = handlers_[i].fn(cycle);
    if (done) {
      handlers_.erase(handlers_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (!handlers_.empty()) schedule_next(now);
}

}  // namespace sst
