// Deterministic random number generation for simulation models.
//
// SST ships its own RNG library so that simulations are reproducible across
// platforms and independent of the C++ standard library's unspecified
// distributions.  We do the same: fixed-algorithm generators (SplitMix64,
// XorShift128+, PCG32) plus the distributions models need, all with exactly
// specified behaviour.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sst::rng {

/// SplitMix64: used to seed the other generators and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// XorShift128+: fast, high-quality 64-bit generator.  The default model
/// RNG.
class XorShift128Plus {
 public:
  using result_type = std::uint64_t;

  explicit XorShift128Plus(std::uint64_t seed = 0x5d5d5d5d5d5d5d5dULL) {
    SplitMix64 sm(seed);
    s0_ = sm.next();
    s1_ = sm.next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is invalid
  }

  std::uint64_t next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  bound == 0 is a checked error.
  /// Rejection sampling to avoid modulo bias; the exact accepted set and
  /// returned values are part of the reproducibility contract, so the
  /// fast paths below must (and do) produce bit-identical streams.
  std::uint64_t next_bounded(std::uint64_t bound) {
    if (bound == 0) throw SimulationError("rng: zero bound");
    if ((bound & (bound - 1)) == 0) {
      // Power of two: 2^64 mod bound == 0, so nothing is ever rejected
      // and the modulo reduces to a mask — no 64-bit division at all.
      return next() & (bound - 1);
    }
    // Hot-path callers draw from the same bound over and over; remember
    // the last threshold so the 2^64-mod-bound division is paid once.
    std::uint64_t threshold = bounded_threshold_;
    if (bound != bounded_last_) {
      threshold = (~bound + 1) % bound;  // 2^64 mod bound
      bounded_last_ = bound;
      bounded_threshold_ = threshold;
    }
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw SimulationError("rng: empty range");
    const std::uint64_t span = hi - lo;
    if (span == ~0ULL) return next();
    return lo + next_bounded(span + 1);
  }

  /// Raw generator state, exposed so checkpoints can capture and resume
  /// the stream mid-sequence.
  struct State {
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
  };
  [[nodiscard]] State state() const { return {s0_, s1_}; }
  void set_state(State st) {
    s0_ = st.s0;
    s1_ = st.s1;
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
  // next_bounded threshold memo (derived data, not part of State: it is
  // recomputed on demand and never affects the output stream).
  std::uint64_t bounded_last_ = 0;
  std::uint64_t bounded_threshold_ = 0;
};

/// PCG32: small-state generator with excellent statistical quality.  Used
/// where models need many independent streams (the stream id is part of
/// the state).
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1) | 1;
    next();
    state_ += seed;
    next();
  }

  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    const auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  std::uint32_t operator()() { return next(); }
  static constexpr std::uint32_t min() { return 0; }
  static constexpr std::uint32_t max() { return ~0U; }

  double next_double() {
    // 32 random bits are enough for model-level probabilities.
    return static_cast<double>(next()) * 0x1.0p-32;
  }

  /// Raw generator state for checkpoint capture/resume.
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
  };
  [[nodiscard]] State state() const { return {state_, inc_}; }
  void set_state(State st) {
    state_ = st.state;
    inc_ = st.inc | 1;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Exponential distribution (for inter-arrival times).
template <typename Rng>
double exponential(Rng& rng, double mean) {
  if (mean <= 0) throw SimulationError("rng: exponential mean must be > 0");
  double u;
  do {
    u = rng.next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

/// Discrete distribution over weights; returns an index in [0, n).
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  template <typename Rng>
  std::size_t sample(Rng& rng) const {
    const double u = rng.next_double() * total_;
    // Binary search over the cumulative weights.
    std::size_t lo = 0, hi = cumulative_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] <= u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo < cumulative_.size() ? lo : cumulative_.size() - 1;
  }

  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

/// Poisson sample via inversion (suitable for small means used in models).
template <typename Rng>
std::uint64_t poisson(Rng& rng, double mean) {
  if (mean <= 0) throw SimulationError("rng: poisson mean must be > 0");
  if (mean > 60.0) {
    // Normal approximation for large means.
    // Box-Muller with two uniforms.
    const double u1 = std::max(rng.next_double(), 1e-300);
    const double u2 = rng.next_double();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    const double v = mean + std::sqrt(mean) * z;
    return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = rng.next_double();
  std::uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= rng.next_double();
  }
  return count;
}

}  // namespace sst::rng
