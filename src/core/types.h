// Core type definitions for the SST-repro simulation framework.
//
// All simulated time is kept as an integer count of picoseconds.  A 64-bit
// count of picoseconds covers ~213 days of simulated time, far beyond any
// architectural simulation horizon, while keeping event comparison exact
// (no floating-point time arithmetic anywhere in the engine).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace sst {

/// Simulated time in picoseconds.
using SimTime = std::uint64_t;

/// Simulated clock cycle index.
using Cycle = std::uint64_t;

/// Identifies a component within a Simulation.
using ComponentId = std::uint32_t;

/// Identifies a link endpoint within a Simulation.
using LinkId = std::uint32_t;

/// Identifies a parallel partition (an in-process stand-in for an MPI rank).
using RankId = std::uint32_t;

inline constexpr SimTime kPicosecond = 1;
inline constexpr SimTime kNanosecond = 1'000;
inline constexpr SimTime kMicrosecond = 1'000'000;
inline constexpr SimTime kMillisecond = 1'000'000'000;
inline constexpr SimTime kSecond = 1'000'000'000'000;

/// Sentinel meaning "no deadline / never".
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

inline constexpr ComponentId kInvalidComponent =
    std::numeric_limits<ComponentId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

/// Thrown for configuration mistakes (bad params, unbound ports, ...).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown for runtime protocol violations inside a simulation.
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when run() exceeds its wall-clock watchdog budget.  A subclass
/// of SimulationError so existing handlers keep working; tools that need
/// to distinguish the failure (sstsim's exit codes) catch this first.
class WatchdogError : public SimulationError {
 public:
  explicit WatchdogError(const std::string& what) : SimulationError(what) {}
};

/// Thrown when every event queue drains while registered primary
/// components are still unsatisfied (a model-level deadlock).
class DeadlockError : public SimulationError {
 public:
  explicit DeadlockError(const std::string& what) : SimulationError(what) {}
};

/// Converts a clock frequency in Hz to a period in picoseconds (rounded to
/// the nearest picosecond, minimum 1 ps).
SimTime frequency_to_period(double hz);

/// Converts a period in picoseconds back to a frequency in Hz.
double period_to_frequency(SimTime period_ps);

}  // namespace sst
