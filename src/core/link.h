// Link: the only communication channel between components.
//
// A link connects two ports with a fixed minimum latency.  That latency is
// what makes conservative parallel simulation possible: the minimum latency
// of links that cross a partition boundary is the synchronization lookahead
// (exactly SST's model).
//
// Each Link object is one *endpoint*: the owning component receives events
// through the handler it registered and sends through Link::send(), which
// delivers to the peer endpoint's handler after the link latency.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "core/event.h"
#include "core/types.h"

namespace sst {

class Simulation;
class Component;

/// Fault-injection hook attached to one link endpoint (the sending side).
/// Consulted once per Link::send on the owning rank's thread, so a model
/// instance must never be shared between endpoints.  Concrete models live
/// in src/fault; core only knows this interface.
class LinkFault {
 public:
  virtual ~LinkFault() = default;

  /// What the fault model decided for one send.
  struct Action {
    bool drop = false;         // discard the event entirely
    bool duplicate = false;    // deliver a cloned copy as well
    SimTime extra_delay = 0;   // added to the link latency
  };

  /// Called for every event sent on the faulted endpoint.
  [[nodiscard]] virtual Action on_send(const Event& ev) = 0;

  /// A duplication was requested but the event type has no clone();
  /// the original is still delivered exactly once.
  virtual void on_duplicate_unclonable() {}

  /// Checkpoint hook: (un)packs the model's dynamic state (RNG stream,
  /// decision counters).  Stateless models need not override.
  virtual void serialize(ckpt::Serializer& s) { (void)s; }
};

class Link {
 public:
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Sends an event to the peer endpoint; it is delivered at
  /// now + latency + extra_delay.
  void send(EventPtr ev, SimTime extra_delay = 0);

  /// During Simulation initialization only: sends untimed setup data to the
  /// peer (delivered in the next init phase).  Used e.g. by memory
  /// hierarchies to discover their topology before time starts.
  void send_init(EventPtr ev);

  /// During initialization only: retrieves the next untimed event received
  /// from the peer, if any.
  [[nodiscard]] EventPtr recv_init();

  /// For polling-mode endpoints: returns the next event whose delivery time
  /// has arrived, or nullptr.
  [[nodiscard]] EventPtr poll();

  /// True once the link has been wired to a peer.
  [[nodiscard]] bool connected() const { return peer_ != nullptr; }

  /// Minimum latency of this link in picoseconds (0 until wired).
  [[nodiscard]] SimTime latency() const { return latency_; }

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] const std::string& port() const { return port_; }

  /// Fault model installed on this endpoint, if any (see
  /// Simulation::install_link_fault).
  [[nodiscard]] const LinkFault* fault() const { return fault_.get(); }

 private:
  friend class Simulation;
  friend class Component;
  friend class ckpt::CheckpointEngine;  // send_seq_/poll_queue_ overlay
  friend class ckpt::Migrator;          // re-targets pending event handlers

  Link(Simulation& sim, LinkId id, ComponentId owner, std::string port,
       EventHandler handler, bool polling, bool optional);

  /// Engine-side delivery into this endpoint (handler or polling queue).
  void deliver(EventPtr ev);

  /// Stamps ordering fields and hands the event to the engine.  send()
  /// funnels here after the fault model has had its say.
  void transmit(EventPtr ev, SimTime extra_delay);

  Simulation* sim_;
  LinkId id_;
  ComponentId owner_;
  std::string port_;
  EventHandler handler_;          // empty for polling endpoints
  bool polling_ = false;
  bool optional_ = false;

  // Wiring (filled by Simulation when connected):
  Link* peer_ = nullptr;
  SimTime latency_ = 0;
  RankId owner_rank_ = 0;
  RankId peer_rank_ = 0;
  std::uint64_t send_seq_ = 0;    // deterministic cross-rank ordering
  std::unique_ptr<LinkFault> fault_;  // null on the (common) healthy path

  std::deque<EventPtr> poll_queue_;
  std::deque<EventPtr> init_queue_;
  // send_init stages here; the engine moves staged events to the peer's
  // init_queue_ between phases so delivery order is phase-accurate.
  std::deque<EventPtr> init_staging_;
};

}  // namespace sst
