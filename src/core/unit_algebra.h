// UnitAlgebra: dimension-checked parsing and arithmetic for configuration
// strings such as "2.4GHz", "64KiB", "1.6GB/s", or "10ns".
//
// This mirrors SST's UnitAlgebra class: every user-facing parameter that has
// a physical dimension is given as a string with units, parsed once, and
// carried through arithmetic with its dimension so that unit mistakes are
// caught at configuration time instead of producing silently wrong models.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/types.h"

namespace sst {

/// Dimension vector: exponents of the base units this framework cares
/// about.  (A full SI system is unnecessary; simulations only combine
/// seconds, bytes, bits, events, and watts.)
struct Units {
  // Exponents for: seconds, bytes, bits, events, watts, dollars.
  std::array<int8_t, 6> exp{0, 0, 0, 0, 0, 0};

  static constexpr int kSeconds = 0;
  static constexpr int kBytes = 1;
  static constexpr int kBits = 2;
  static constexpr int kEvents = 3;
  static constexpr int kWatts = 4;
  static constexpr int kDollars = 5;

  friend bool operator==(const Units&, const Units&) = default;

  [[nodiscard]] bool dimensionless() const {
    for (auto e : exp)
      if (e != 0) return false;
    return true;
  }

  [[nodiscard]] Units operator*(const Units& o) const;
  [[nodiscard]] Units operator/(const Units& o) const;
  [[nodiscard]] Units inverted() const;
  [[nodiscard]] std::string to_string() const;
};

/// A value with a dimension.  Internally everything is stored in the base
/// units (seconds, bytes, bits, events, watts, dollars), so e.g. "2GHz"
/// is stored as 2e9 with dimension events/second... see parse() for the
/// exact unit table.
class UnitAlgebra {
 public:
  UnitAlgebra() = default;

  /// Parses a string such as "16GiB/s" or "3.5 ns".  Throws ConfigError on
  /// malformed input or unknown units.
  explicit UnitAlgebra(std::string_view text);

  /// Constructs from a raw value and explicit dimension.
  UnitAlgebra(double value, Units units) : value_(value), units_(units) {}

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] const Units& units() const { return units_; }

  /// Value rounded to the nearest unsigned 64-bit integer.  Throws if the
  /// value is negative or too large.
  [[nodiscard]] std::uint64_t rounded() const;

  /// True when this quantity has the dimension of the example string,
  /// e.g. `x.has_units_of("1ns")`.
  [[nodiscard]] bool has_units_of(std::string_view example) const;

  /// For time quantities: the value in picoseconds as SimTime.
  /// Throws ConfigError when the dimension is not time.
  [[nodiscard]] SimTime to_simtime() const;

  /// For frequency quantities (1/s or events/s): the period in picoseconds.
  /// Also accepts time quantities directly (treated as the period).
  [[nodiscard]] SimTime to_period() const;

  /// For byte-count quantities: the count of bytes.
  [[nodiscard]] std::uint64_t to_bytes() const;

  /// For bandwidth quantities (bytes/s or bits/s): bytes per second.
  [[nodiscard]] double to_bytes_per_second() const;

  UnitAlgebra& operator+=(const UnitAlgebra& o);
  UnitAlgebra& operator-=(const UnitAlgebra& o);
  UnitAlgebra& operator*=(const UnitAlgebra& o);
  UnitAlgebra& operator/=(const UnitAlgebra& o);

  [[nodiscard]] friend UnitAlgebra operator+(UnitAlgebra a,
                                             const UnitAlgebra& b) {
    return a += b;
  }
  [[nodiscard]] friend UnitAlgebra operator-(UnitAlgebra a,
                                             const UnitAlgebra& b) {
    return a -= b;
  }
  [[nodiscard]] friend UnitAlgebra operator*(UnitAlgebra a,
                                             const UnitAlgebra& b) {
    return a *= b;
  }
  [[nodiscard]] friend UnitAlgebra operator/(UnitAlgebra a,
                                             const UnitAlgebra& b) {
    return a /= b;
  }

  [[nodiscard]] UnitAlgebra inverted() const;

  /// Compares magnitude; throws ConfigError on dimension mismatch.
  [[nodiscard]] bool operator<(const UnitAlgebra& o) const;
  [[nodiscard]] bool operator>(const UnitAlgebra& o) const;
  [[nodiscard]] bool operator==(const UnitAlgebra& o) const;

  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const UnitAlgebra& ua);

 private:
  double value_ = 0.0;
  Units units_{};
};

}  // namespace sst
