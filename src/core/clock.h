// Clock: shared periodic tick distribution.
//
// Components register handlers at a frequency; all handlers with the same
// period on the same partition share one Clock, so an N-component system
// costs one event per cycle, not N.  A handler returning true unregisters
// itself; the Clock stops ticking when no handlers remain (and resumes when
// one is added), so simulated time can fast-forward through idle phases.
//
// Tick events are pooled: every Clock owns at most one ClockTickEvent,
// which shuttles between the TimeVortex and the clock's spare slot instead
// of being heap-allocated every cycle.  A steady-state clock therefore
// performs exactly one allocation over the whole run.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/event.h"
#include "core/types.h"

namespace sst {

class Simulation;

/// Return true to unregister from further ticks.
using ClockHandler = std::function<bool(Cycle)>;

class Clock {
 public:
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  /// A registered handler, attributed to the component that owns it so
  /// the event tracer can label dispatches (kInvalidComponent marks
  /// engine-internal handlers, which are never traced).
  struct Handler {
    ComponentId comp = kInvalidComponent;
    ClockHandler fn;
  };

  [[nodiscard]] SimTime period() const { return period_; }
  [[nodiscard]] Cycle current_cycle() const { return cycle_; }
  [[nodiscard]] std::size_t handler_count() const { return handlers_.size(); }

  /// Total ticks dispatched (for engine statistics).
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  /// Tick-pool traffic: fresh ClockTickEvent allocations vs. reuses of
  /// the spare slot.  allocs is 1 for a clock that never went idle;
  /// allocs + recycles equals the number of ticks scheduled.
  [[nodiscard]] std::uint64_t tick_allocs() const { return tick_allocs_; }
  [[nodiscard]] std::uint64_t tick_recycles() const {
    return tick_recycles_;
  }

 private:
  friend class Simulation;
  friend class ckpt::CheckpointEngine;  // cycle/handler-order overlay
  friend class ckpt::Migrator;          // moves handlers between ranks

  Clock(Simulation& sim, RankId rank, SimTime period);

  /// Adds a handler; (re)schedules the tick event if the clock was idle.
  void add_handler(ComponentId comp, ClockHandler h);

  /// Delivers one tick to all handlers; drops those that return true;
  /// reschedules when handlers remain.
  void tick(SimTime now);

  void schedule_next(SimTime now);

  Simulation* sim_;
  RankId rank_;
  SimTime period_;
  Cycle cycle_ = 0;
  bool scheduled_ = false;
  std::uint64_t ticks_ = 0;
  std::vector<Handler> handlers_;
  EventHandler tick_handler_;  // bound once; target of tick events
  // Tick-event pool: the delivered tick parks here until schedule_next
  // re-stamps and re-inserts it (null while a tick is in the vortex or
  // after checkpoint restore cleared the queues).
  EventPtr spare_tick_;
  std::uint64_t tick_allocs_ = 0;
  std::uint64_t tick_recycles_ = 0;
};

}  // namespace sst
