#include "core/sync_policy.h"

#include <string>

namespace sst {

const char* sync_mode_name(SyncMode mode) {
  switch (mode) {
    case SyncMode::kConservative: return "conservative";
    case SyncMode::kAdaptive: return "adaptive";
    case SyncMode::kLax: return "lax";
  }
  return "?";
}

AdaptiveWindowController::AdaptiveWindowController(SimTime min_window,
                                                  SimTime max_window)
    : min_window_(min_window),
      max_window_(max_window),
      window_(min_window) {
  if (min_window_ < 1) {
    throw ConfigError("adaptive window: min_window must be >= 1ps");
  }
  if (max_window_ < min_window_) {
    throw ConfigError("adaptive window: max_window " +
                      std::to_string(max_window_) +
                      "ps is smaller than min_window " +
                      std::to_string(min_window_) + "ps");
  }
}

SimTime AdaptiveWindowController::update(const SyncEpochStats& stats) {
  // An epoch that retired nothing was pure synchronization overhead —
  // treat it like a fully barrier-bound epoch.
  const bool grow = stats.events_processed == 0 ||
                    stats.barrier_wait_fraction >= kGrowThreshold;
  const bool shrink =
      !grow && stats.barrier_wait_fraction <= kShrinkThreshold;
  if (grow) {
    window_ = (window_ > max_window_ / kStepFactor) ? max_window_
                                                    : window_ * kStepFactor;
  } else if (shrink) {
    window_ = window_ / kStepFactor;
  }
  if (window_ < min_window_) window_ = min_window_;
  if (window_ > max_window_) window_ = max_window_;
  return window_;
}

}  // namespace sst
