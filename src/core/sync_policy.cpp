#include "core/sync_policy.h"

#include <string>

namespace sst {

const char* sync_mode_name(SyncMode mode) {
  switch (mode) {
    case SyncMode::kConservative: return "conservative";
    case SyncMode::kAdaptive: return "adaptive";
    case SyncMode::kLax: return "lax";
  }
  return "?";
}

AdaptiveWindowController::AdaptiveWindowController(SimTime min_window,
                                                  SimTime max_window)
    : min_window_(min_window),
      max_window_(max_window),
      window_(min_window) {
  if (min_window_ < 1) {
    throw ConfigError("adaptive window: min_window must be >= 1ps");
  }
  if (max_window_ < min_window_) {
    throw ConfigError("adaptive window: max_window " +
                      std::to_string(max_window_) +
                      "ps is smaller than min_window " +
                      std::to_string(min_window_) + "ps");
  }
}

SimTime AdaptiveWindowController::update(const SyncEpochStats& stats) {
  // An epoch that retired nothing was pure synchronization overhead —
  // treat it like a fully barrier-bound epoch.
  const bool grow = stats.events_processed == 0 ||
                    stats.barrier_wait_fraction >= kGrowThreshold;
  const bool shrink =
      !grow && stats.barrier_wait_fraction <= kShrinkThreshold;
  if (grow) {
    window_ = (window_ > max_window_ / kStepFactor) ? max_window_
                                                    : window_ * kStepFactor;
  } else if (shrink) {
    window_ = window_ / kStepFactor;
  }
  if (window_ < min_window_) window_ = min_window_;
  if (window_ > max_window_) window_ = max_window_;
  return window_;
}

RebalanceController::RebalanceController(RebalanceConfig cfg,
                                         std::uint32_t num_ranks)
    : cfg_(cfg), num_ranks_(num_ranks) {
  if (!(cfg_.threshold > 1.0)) {
    throw ConfigError("rebalance: threshold must be > 1 (max/mean ratio)");
  }
  if (cfg_.period < 1) {
    throw ConfigError("rebalance: period must be >= 1 sync epoch");
  }
  if (cfg_.max_moves < 1) {
    throw ConfigError("rebalance: max_moves must be >= 1");
  }
  if (num_ranks_ < 1) {
    throw ConfigError("rebalance: num_ranks must be >= 1");
  }
}

double RebalanceController::imbalance(
    const std::vector<std::uint64_t>& per_rank) {
  if (per_rank.empty()) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (const std::uint64_t v : per_rank) {
    total += v;
    if (v > max) max = v;
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(per_rank.size());
  return static_cast<double>(max) / mean;
}

std::vector<MigrationDecision> RebalanceController::plan(
    const std::vector<ComponentLoad>& loads) const {
  std::vector<MigrationDecision> moves;
  if (num_ranks_ < 2) return moves;

  std::vector<std::uint64_t> rank_load(num_ranks_, 0);
  std::uint64_t total = 0;
  for (const ComponentLoad& l : loads) {
    rank_load[l.rank] += l.events;
    total += l.events;
  }
  if (total < cfg_.min_events) return moves;
  if (imbalance(rank_load) < cfg_.threshold) return moves;

  // Greedy: repeatedly shave the hottest rank toward the coldest.  The
  // candidate is the largest per-component load that fits in half the
  // hot/cold gap (never overshoots, so the plan cannot ping-pong a
  // component back next period).  All ties break on the lowest id.
  std::vector<RankId> comp_rank(loads.size());
  std::vector<std::uint64_t> comp_events(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    comp_rank[i] = loads[i].rank;
    comp_events[i] = loads[i].events;
  }
  for (std::uint32_t step = 0; step < cfg_.max_moves; ++step) {
    RankId hot = 0;
    RankId cold = 0;
    for (RankId r = 1; r < num_ranks_; ++r) {
      if (rank_load[r] > rank_load[hot]) hot = r;
      if (rank_load[r] < rank_load[cold]) cold = r;
    }
    const std::uint64_t gap = rank_load[hot] - rank_load[cold];
    const std::uint64_t budget = gap / 2;
    if (budget == 0) break;
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t best = kNone;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (comp_rank[i] != hot) continue;
      const std::uint64_t e = comp_events[i];
      if (e == 0 || e > budget) continue;
      if (best == kNone || e > comp_events[best] ||
          (e == comp_events[best] && loads[i].comp < loads[best].comp)) {
        best = i;
      }
    }
    if (best == kNone) break;  // nothing fits without overshoot
    moves.push_back({loads[best].comp, hot, cold});
    comp_rank[best] = cold;
    rank_load[hot] -= comp_events[best];
    rank_load[cold] += comp_events[best];
  }
  return moves;
}

}  // namespace sst
