// Component: base class for every simulated entity.
//
// Components are constructed through Simulation::add_component (or the
// Factory), configure their ports/clocks/statistics in their constructor,
// and interact with the world only through Links — never by calling each
// other directly.  That isolation is what lets the engine partition a
// component graph across ranks.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/clock.h"
#include "core/event.h"
#include "core/link.h"
#include "core/params.h"
#include "core/rng.h"
#include "core/statistics.h"
#include "core/types.h"
#include "core/unit_algebra.h"

namespace sst {

class Simulation;

class Component {
 public:
  virtual ~Component();

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Multi-phase untimed initialization.  Called with increasing phase
  /// numbers until no component sends further init data.  Use
  /// Link::send_init / Link::recv_init here.
  virtual void init(unsigned phase) { (void)phase; }

  /// Called once after wiring and init phases, before time starts.
  virtual void setup() {}

  /// Called once after the run completes; a good place to finalize
  /// derived statistics.
  virtual void finish() {}

  /// Checkpoint hook: (un)packs this component's dynamic state through
  /// the bidirectional serializer (`s & field` both saves and restores —
  /// see src/ckpt/serializer.h).  The base-class state (primary flag,
  /// RNG stream, trace sequence) is handled by the checkpoint engine;
  /// overrides serialize model fields only.  Components whose state is
  /// fully determined by construction need not override.
  virtual void serialize_state(ckpt::Serializer& s) { (void)s; }

  [[nodiscard]] ComponentId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] RankId rank() const { return rank_; }

 protected:
  /// Binds to the Simulation currently constructing a component.
  /// Components must only be created via Simulation::add_component or the
  /// Factory.
  Component();

  [[nodiscard]] Simulation& sim() const { return *sim_; }

  /// Current simulated time of this component's partition.
  [[nodiscard]] SimTime now() const;

  /// Declares a port and attaches the receive handler.  The returned Link
  /// is used for sending; it becomes usable once the Simulation wires it.
  Link* configure_link(std::string_view port, EventHandler handler,
                       bool optional = false);

  /// Declares a port whose events are retrieved by polling (Link::poll).
  Link* configure_polling_link(std::string_view port, bool optional = false);

  /// A link from this component to itself with the given latency — the
  /// idiomatic way to model internal pipeline delays and timeouts.
  Link* configure_self_link(std::string_view name, SimTime latency,
                            EventHandler handler);

  /// Registers a periodic handler.  Accepts a period in ps.
  void register_clock(SimTime period_ps, ClockHandler handler);
  /// Registers from a frequency/period string, e.g. "2GHz" or "500ps".
  void register_clock(const UnitAlgebra& freq_or_period,
                      ClockHandler handler);

  /// Statistics; names must be unique within a component.
  Counter* stat_counter(const std::string& name);
  Accumulator* stat_accumulator(const std::string& name);
  Histogram* stat_histogram(const std::string& name, double lo, double width,
                            std::size_t nbins);

  /// Emits a marker into the event trace (no-op unless the run has
  /// tracing enabled — see SimConfig::trace / --trace).  Markers appear
  /// on this component's track at the current simulated time and are
  /// part of the deterministic trace: a parallel run records exactly the
  /// same markers as a serial one.
  void trace_event(const std::string& name, const std::string& detail = {});

  /// Termination protocol (see Simulation): a primary component keeps the
  /// simulation alive until it declares completion.
  void register_as_primary();
  void primary_ok_to_end_sim();

  /// Per-component deterministic random stream (seeded from the global
  /// seed and the component id).
  [[nodiscard]] rng::XorShift128Plus& rng() { return rng_; }

 private:
  friend class Simulation;
  friend class ckpt::CheckpointEngine;  // base state capture/overlay
  friend class ckpt::Migrator;          // rank_ rewrite + state transfer

  Simulation* sim_ = nullptr;
  ComponentId id_ = kInvalidComponent;
  std::string name_;
  RankId rank_ = 0;
  bool is_primary_ = false;
  bool said_ok_ = false;
  std::uint64_t trace_seq_ = 0;  // per-component marker sequence number
  rng::XorShift128Plus rng_;
};

}  // namespace sst
