#include "core/rng.h"

namespace sst::rng {

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  if (weights.empty())
    throw SimulationError("DiscreteDistribution: empty weights");
  cumulative_.reserve(weights.size());
  double running = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw SimulationError("DiscreteDistribution: negative weight");
    running += w;
    cumulative_.push_back(running);
  }
  if (running <= 0.0)
    throw SimulationError("DiscreteDistribution: zero total weight");
  total_ = running;
}

}  // namespace sst::rng
