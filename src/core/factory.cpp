#include "core/factory.h"

#include "core/simulation.h"

namespace sst {

Factory& Factory::instance() {
  static Factory factory;
  return factory;
}

void Factory::register_component(const std::string& type, Builder builder) {
  if (!builder) throw ConfigError("null builder for '" + type + "'");
  auto [it, inserted] = builders_.emplace(type, std::move(builder));
  (void)it;
  if (!inserted) {
    throw ConfigError("component type registered twice: '" + type + "'");
  }
}

bool Factory::known(const std::string& type) const {
  return builders_.contains(type);
}

Component* Factory::create(Simulation& sim, const std::string& type,
                           const std::string& name, Params& params) const {
  auto it = builders_.find(type);
  if (it == builders_.end()) {
    std::string msg = "unknown component type '" + type + "'; known types:";
    for (const auto& t : registered_types()) msg += " " + t;
    throw ConfigError(msg);
  }
  return it->second(sim, name, params);
}

void Factory::describe_params(const std::string& type,
                              std::vector<ParamDoc> docs) {
  if (!known(type)) {
    throw ConfigError("describe_params: unregistered type '" + type + "'");
  }
  auto [it, inserted] = param_docs_.emplace(type, std::move(docs));
  (void)it;
  if (!inserted) {
    throw ConfigError("params documented twice for '" + type + "'");
  }
}

const std::vector<ParamDoc>* Factory::param_docs(
    const std::string& type) const {
  auto it = param_docs_.find(type);
  return it == param_docs_.end() ? nullptr : &it->second;
}

std::vector<std::string> Factory::registered_types() const {
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [k, v] : builders_) {
    (void)v;
    out.push_back(k);
  }
  return out;
}

}  // namespace sst
