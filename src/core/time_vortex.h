// TimeVortex: the central pending-event queue of a simulation partition.
//
// A binary min-heap over (delivery_time, priority, order).  The name comes
// from SST, where the same structure drives the main event loop.
#pragma once

#include <cstddef>
#include <vector>

#include "core/event.h"
#include "core/types.h"

namespace sst {

class TimeVortex {
 public:
  TimeVortex() = default;

  TimeVortex(const TimeVortex&) = delete;
  TimeVortex& operator=(const TimeVortex&) = delete;
  TimeVortex(TimeVortex&&) = default;
  TimeVortex& operator=(TimeVortex&&) = default;

  /// Inserts an event.  The event's ordering fields (delivery time,
  /// priority, source id, sequence) must already be stamped by the sender.
  void insert(EventPtr ev);

  /// Removes and returns the earliest event.  Empty queue is a programming
  /// error (checked).
  [[nodiscard]] EventPtr pop();

  /// Time of the earliest event, or kTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Total number of insertions over the vortex's lifetime.
  [[nodiscard]] std::uint64_t total_inserted() const { return inserted_; }

  /// High-water mark of the queue depth.
  [[nodiscard]] std::size_t max_depth() const { return max_depth_; }

 private:
  friend class ckpt::CheckpointEngine;  // heap capture/counter overlay

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  [[nodiscard]] bool before(std::size_t a, std::size_t b) const {
    return EventOrder{}(*heap_[a], *heap_[b]);
  }

  std::vector<EventPtr> heap_;
  std::uint64_t inserted_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace sst
