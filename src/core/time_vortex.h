// TimeVortex: the central pending-event queue of a simulation partition.
//
// A 4-ary min-heap over (delivery_time, priority, source, sequence).  The
// name comes from SST, where the same structure drives the main event loop.
//
// Hot-path layout: each heap slot stores the full ordering key *inline*
// next to the owning event pointer, so sift comparisons never dereference
// the Event (which lives wherever the allocator put it).  A comparison is
// two adjacent 32-byte nodes instead of two random heap objects — the
// difference between L1 hits and cache misses on deep queues.  The 4-ary
// shape halves the tree depth (the sift-down on every pop walks ~log4
// levels) and keeps the four candidate children in two cache lines.
//
// Ordering keys are unique — (source, seq) breaks every tie — so the pop
// sequence is the engine's deterministic total order regardless of heap
// arity or internal layout.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/event.h"
#include "core/types.h"

namespace sst {

class TimeVortex {
 public:
  TimeVortex() = default;

  TimeVortex(const TimeVortex&) = delete;
  TimeVortex& operator=(const TimeVortex&) = delete;
  TimeVortex(TimeVortex&&) = default;
  TimeVortex& operator=(TimeVortex&&) = default;

  // The queue operations run once (insert) or twice (next_time + pop)
  // per simulated event; they are defined inline below so the run loops
  // pay no cross-TU call per event.

  /// Inserts an event.  The event's ordering fields (delivery time,
  /// priority, source id, sequence) must already be stamped by the sender;
  /// they are copied into the heap node at insertion.
  void insert(EventPtr ev) {
    if (!ev) throw SimulationError("TimeVortex::insert: null event");
    const Event& e = *ev;
    heap_.push_back(Node{e.delivery_time_, e.priority_, e.link_id_,
                         e.order_, std::move(ev)});
    sift_up(heap_.size() - 1);
    ++inserted_;
    if (heap_.size() > max_depth_) max_depth_ = heap_.size();
  }

  /// Removes and returns the earliest event.  Empty queue is a programming
  /// error (checked).
  [[nodiscard]] EventPtr pop() {
    if (heap_.empty()) throw SimulationError("TimeVortex::pop: empty queue");
    EventPtr top = std::move(heap_.front().ev);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  /// Time of the earliest event, or kTimeNever when empty.
  [[nodiscard]] SimTime next_time() const {
    return heap_.empty() ? kTimeNever : heap_.front().time;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Drops every pending event (checkpoint restore replaces the queue
  /// wholesale).  Counters are left for the caller to overlay.
  void clear() { heap_.clear(); }

  /// Removes every event whose *source id* satisfies `pred(LinkId)` and
  /// returns them in heap (not time) order; the heap is rebuilt in place
  /// with an O(n) bottom-up make-heap.  Used by component migration to
  /// pull a component's pending events out of the queue; callers needing
  /// time order must sort the result with EventOrder.
  template <typename Pred>
  [[nodiscard]] std::vector<EventPtr> extract_if(Pred pred) {
    std::vector<EventPtr> out;
    std::size_t w = 0;
    for (std::size_t r = 0; r < heap_.size(); ++r) {
      if (pred(heap_[r].source)) {
        out.push_back(std::move(heap_[r].ev));
      } else {
        if (w != r) heap_[w] = std::move(heap_[r]);
        ++w;
      }
    }
    if (w == heap_.size()) return out;  // nothing matched; heap untouched
    heap_.resize(w);
    if (heap_.size() > 1) {
      for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
        sift_down(i);
      }
    }
    return out;
  }

  /// Pre-sizes the heap storage (e.g. to a restored high-water mark).
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Total number of insertions over the vortex's lifetime.
  [[nodiscard]] std::uint64_t total_inserted() const { return inserted_; }

  /// High-water mark of the queue depth.
  [[nodiscard]] std::size_t max_depth() const { return max_depth_; }

 private:
  friend class ckpt::CheckpointEngine;  // heap capture/counter overlay

  /// One heap slot: the 24-byte ordering key inline, then the event.
  struct Node {
    SimTime time;
    std::uint32_t priority;
    LinkId source;
    std::uint64_t seq;
    EventPtr ev;
  };

  /// EventOrder over the inline keys (kept in lockstep with EventOrder —
  /// same field-by-field comparison, no Event dereference).
  [[nodiscard]] static bool node_before(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.source != b.source) return a.source < b.source;
    return a.seq < b.seq;
  }

  static constexpr std::size_t kArity = 4;

  // Both sifts move the displaced node into a hole that percolates
  // through the tree: one node move per level instead of a three-move
  // swap.

  void sift_up(std::size_t i) {
    if (i == 0) return;
    Node moving = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!node_before(moving, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(moving);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Node moving = std::move(heap_[i]);
    for (;;) {
      const std::size_t first = kArity * i + 1;
      if (first >= n) break;
      std::size_t smallest = first;
      const std::size_t end = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (node_before(heap_[c], heap_[smallest])) smallest = c;
      }
      if (!node_before(heap_[smallest], moving)) break;
      heap_[i] = std::move(heap_[smallest]);
      i = smallest;
    }
    heap_[i] = std::move(moving);
  }

  std::vector<Node> heap_;
  std::uint64_t inserted_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace sst
