#include "core/time_vortex.h"

#include <utility>

namespace sst {

void TimeVortex::insert(EventPtr ev) {
  if (!ev) throw SimulationError("TimeVortex::insert: null event");
  heap_.push_back(std::move(ev));
  sift_up(heap_.size() - 1);
  ++inserted_;
  if (heap_.size() > max_depth_) max_depth_ = heap_.size();
}

EventPtr TimeVortex::pop() {
  if (heap_.empty()) throw SimulationError("TimeVortex::pop: empty queue");
  EventPtr top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

SimTime TimeVortex::next_time() const {
  return heap_.empty() ? kTimeNever : heap_.front()->delivery_time();
}

void TimeVortex::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(i, parent)) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void TimeVortex::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && before(l, smallest)) smallest = l;
    if (r < n && before(r, smallest)) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace sst
