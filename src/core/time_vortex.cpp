// TimeVortex is header-only for performance (see time_vortex.h): the
// queue operations run on every simulated event and are inlined into the
// run loops.  This translation unit only anchors the header in the build.
#include "core/time_vortex.h"
