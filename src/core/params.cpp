#include "core/params.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace sst {

const std::string* Params::lookup(std::string_view key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  used_.insert(it->first);
  return &it->second;
}

std::optional<std::string> Params::raw(std::string_view key) const {
  const std::string* v = lookup(key);
  if (v == nullptr) return std::nullopt;
  return *v;
}

SimTime Params::find_period(std::string_view key,
                            std::string_view default_value) const {
  const std::string* v = lookup(key);
  const std::string text = v ? *v : std::string(default_value);
  try {
    return UnitAlgebra(text).to_period();
  } catch (const ConfigError& e) {
    throw ConfigError("parameter '" + std::string(key) + "': " + e.what());
  }
}

SimTime Params::find_time(std::string_view key,
                          std::string_view default_value) const {
  const std::string* v = lookup(key);
  const std::string text = v ? *v : std::string(default_value);
  try {
    return UnitAlgebra(text).to_simtime();
  } catch (const ConfigError& e) {
    throw ConfigError("parameter '" + std::string(key) + "': " + e.what());
  }
}

Params Params::scope(std::string_view prefix) const {
  Params out;
  for (const auto& [k, v] : values_) {
    if (k.size() > prefix.size() && std::string_view(k).substr(0, prefix.size()) == prefix) {
      out.values_.emplace(k.substr(prefix.size()), v);
      used_.insert(k);  // scoping counts as a read of the parent key
    }
  }
  return out;
}

void Params::merge(const Params& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::vector<std::string> Params::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    (void)v;
    if (used_.find(k) == used_.end()) out.push_back(k);
  }
  return out;
}

std::vector<std::string> Params::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) {
    (void)v;
    out.push_back(k);
  }
  return out;
}

namespace detail {

namespace {
[[noreturn]] void bad_value(const std::string& text, std::string_view key,
                            const char* type) {
  throw ConfigError("parameter '" + std::string(key) + "': cannot parse '" +
                    text + "' as " + type);
}
}  // namespace

template <>
std::string parse_param<std::string>(const std::string& text,
                                     std::string_view) {
  return text;
}

template <>
bool parse_param<bool>(const std::string& text, std::string_view key) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on")
    return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off")
    return false;
  bad_value(text, key, "bool");
}

template <>
double parse_param<double>(const std::string& text, std::string_view key) {
  // Accept plain numbers or dimensionful quantities ("2.5GHz" -> 2.5e9).
  const char* begin = text.c_str();
  char* end = nullptr;
  const double plain = std::strtod(begin, &end);
  if (end != begin && *end == '\0') return plain;
  try {
    return UnitAlgebra(text).value();
  } catch (const ConfigError&) {
    bad_value(text, key, "double");
  }
}

namespace {
template <typename I>
I parse_integral(const std::string& text, std::string_view key,
                 const char* type) {
  I value{};
  const char* first = text.c_str();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc() && ptr == last) return value;
  // Fall back to UnitAlgebra for quantities like "64KiB".
  try {
    const std::uint64_t v = UnitAlgebra(text).rounded();
    if (v > static_cast<std::uint64_t>(std::numeric_limits<I>::max()))
      bad_value(text, key, type);
    return static_cast<I>(v);
  } catch (const ConfigError&) {
    bad_value(text, key, type);
  }
}
}  // namespace

template <>
std::int32_t parse_param<std::int32_t>(const std::string& text,
                                       std::string_view key) {
  return parse_integral<std::int32_t>(text, key, "int32");
}

template <>
std::uint32_t parse_param<std::uint32_t>(const std::string& text,
                                         std::string_view key) {
  return parse_integral<std::uint32_t>(text, key, "uint32");
}

template <>
std::int64_t parse_param<std::int64_t>(const std::string& text,
                                       std::string_view key) {
  return parse_integral<std::int64_t>(text, key, "int64");
}

template <>
std::uint64_t parse_param<std::uint64_t>(const std::string& text,
                                         std::string_view key) {
  return parse_integral<std::uint64_t>(text, key, "uint64");
}

template <>
UnitAlgebra parse_param<UnitAlgebra>(const std::string& text,
                                     std::string_view key) {
  try {
    return UnitAlgebra(text);
  } catch (const ConfigError& e) {
    throw ConfigError("parameter '" + std::string(key) + "': " + e.what());
  }
}

}  // namespace detail

}  // namespace sst
