#include "core/link.h"

#include <utility>

#include "core/simulation.h"

namespace sst {

Link::Link(Simulation& sim, LinkId id, ComponentId owner, std::string port,
           EventHandler handler, bool polling, bool optional)
    : sim_(&sim),
      id_(id),
      owner_(owner),
      port_(std::move(port)),
      handler_(std::move(handler)),
      polling_(polling),
      optional_(optional) {
  if (polling_) {
    handler_ = [this](EventPtr ev) { poll_queue_.push_back(std::move(ev)); };
  }
  if (!handler_) {
    throw ConfigError("link endpoint '" + port_ + "' has no handler");
  }
}

void Link::send(EventPtr ev, SimTime extra_delay) {
  if (!ev) throw SimulationError("Link::send: null event");
  if (peer_ == nullptr) {
    throw SimulationError("Link::send on unconnected port '" +
                          sim_->components_raw_name(owner_) + "." + port_ +
                          "'");
  }
  if (sim_->in_init_phase()) {
    throw SimulationError(
        "Link::send during init phases; use send_init on port '" + port_ +
        "'");
  }
  if (fault_ != nullptr) [[unlikely]] {
    const LinkFault::Action act = fault_->on_send(*ev);
    if (act.drop) return;
    if (act.duplicate) {
      if (EventPtr dup = ev->clone()) {
        transmit(std::move(dup), extra_delay + act.extra_delay);
      } else {
        fault_->on_duplicate_unclonable();
      }
    }
    extra_delay += act.extra_delay;
  }
  transmit(std::move(ev), extra_delay);
}

void Link::transmit(EventPtr ev, SimTime extra_delay) {
  const SimTime now = sim_->rank_now(owner_rank_);
  ev->delivery_time_ = now + latency_ + extra_delay;
  ev->link_id_ = id_;
  ev->handler_ = &peer_->handler_;
  // Cross-rank determinism: stamp the per-link send sequence so the
  // receiver can totally order drained mailbox events.
  ev->order_ = send_seq_++;
  sim_->schedule(owner_rank_, peer_rank_, std::move(ev));
}

void Link::send_init(EventPtr ev) {
  if (!ev) throw SimulationError("Link::send_init: null event");
  if (peer_ == nullptr) {
    throw SimulationError("Link::send_init on unconnected port '" +
                          sim_->components_raw_name(owner_) + "." + port_ +
                          "'");
  }
  if (!sim_->in_init_phase()) {
    throw SimulationError("Link::send_init outside init phases on port '" +
                          port_ + "'");
  }
  init_staging_.push_back(std::move(ev));
  sim_->note_init_data_sent();
}

EventPtr Link::recv_init() {
  if (init_queue_.empty()) return nullptr;
  EventPtr ev = std::move(init_queue_.front());
  init_queue_.pop_front();
  return ev;
}

EventPtr Link::poll() {
  if (!polling_) {
    throw SimulationError("Link::poll on handler-mode port '" + port_ + "'");
  }
  if (poll_queue_.empty()) return nullptr;
  EventPtr ev = std::move(poll_queue_.front());
  poll_queue_.pop_front();
  return ev;
}

}  // namespace sst
