#include "core/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace fs = std::filesystem;

namespace sst {

std::string atomic_tmp_name(const std::string& path) {
  const fs::path target(path);
  const std::string tmp = ".tmp." + std::to_string(::getpid()) + "." +
                          target.filename().string();
  return (target.parent_path() / tmp).string();
}

std::string atomic_publish(const std::string& path,
                           std::string_view content) {
  const std::string tmp = atomic_tmp_name(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return "cannot create temp file '" + tmp +
           "': " + std::strerror(errno);
  }
  std::size_t off = 0;
  while (off < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return "short write to temp file '" + tmp + "'";
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return "fsync of temp file '" + tmp + "' failed: " +
           std::strerror(errno);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return "cannot publish '" + path + "': " + std::strerror(err);
  }
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {  // best effort, like the checkpoint writer
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return "";
}

std::string append_durable(const std::string& path,
                           std::string_view content) {
  std::error_code ec;
  const bool existed = fs::exists(path, ec);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return "cannot open '" + path + "' for append: " + std::strerror(errno);
  }
  std::size_t off = 0;
  while (off < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return "short append to '" + path + "'";
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return "fsync of '" + path + "' failed: " + std::strerror(errno);
  }
  ::close(fd);
  if (!existed) {  // make the file's directory entry durable too
    const fs::path parent = fs::path(path).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
    }
  }
  return "";
}

std::string write_durable(const std::string& path,
                          std::string_view content) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return "cannot create '" + path + "': " + std::strerror(errno);
  }
  std::size_t off = 0;
  while (off < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return "short write to '" + path + "'";
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return "fsync of '" + path + "' failed: " + std::strerror(errno);
  }
  ::close(fd);
  return "";
}

std::string truncate_torn_tail(const std::string& path,
                               std::size_t fragment_chars) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return "cannot open '" + path + "': " + std::strerror(errno);
  }
  const ::off_t size = ::lseek(fd, 0, SEEK_END);
  ::off_t cut = static_cast<::off_t>(fragment_chars);
  // std::getline strips newlines; if the fragment is newline-terminated
  // on disk, that byte belongs to the fragment too.
  char last = '\0';
  if (size > 0 && ::pread(fd, &last, 1, size - 1) == 1 && last == '\n') {
    ++cut;
  }
  if (cut > size) cut = size;
  if (::ftruncate(fd, size - cut) != 0) {
    ::close(fd);
    return "cannot truncate '" + path + "': " + std::strerror(errno);
  }
  ::fsync(fd);
  ::close(fd);
  return "";
}

}  // namespace sst
