// Crash-consistent file publishing shared by every durable writer in the
// tree (the dse sweep ledger, the daemon request ledger, worker stats
// dumps).  One discipline everywhere:
//
//   write .tmp.<pid>.<name>  ->  fsync  ->  rename  ->  fsync(dir)
//
// A SIGKILL at any instant leaves either the previous intact file or the
// new intact file, never a torn one.  The temp name embeds the writer's
// PID so two processes sharing an output directory (a daemon worker and
// a stray sstsim, say) can never collide on the same *.tmp and publish
// each other's half-written bytes.
#pragma once

#include <string>
#include <string_view>

namespace sst {

/// The PID-tagged temp sibling used while publishing `path`
/// (".tmp.<pid>.<filename>" in the same directory).  Exposed so tests
/// can assert on the naming contract.
[[nodiscard]] std::string atomic_tmp_name(const std::string& path);

/// Atomically replaces `path` with `content` through the tmp + fsync +
/// rename + directory-fsync protocol.  Returns "" on success, otherwise
/// a human-readable error message (callers wrap it in their own
/// exception types).  The temp file is always unlinked on failure.
[[nodiscard]] std::string atomic_publish(const std::string& path,
                                         std::string_view content);

/// Durably appends `content` to `path` (creating it if absent): a
/// single O_APPEND write followed by fsync, plus a directory fsync when
/// the call created the file.  A SIGKILL mid-append leaves at most one
/// torn tail fragment, which JSONL readers with torn-tail recovery (the
/// sweep and request ledgers) discard on load.  Returns "" on success,
/// otherwise a human-readable error message.
[[nodiscard]] std::string append_durable(const std::string& path,
                                         std::string_view content);

/// Writes `content` to `path` in place (O_TRUNC) with a single data
/// fsync — no temp file, no rename, no directory fsync.  The cheap tier
/// of the durability ladder, for files whose loss or tearing is
/// *detected and reported* by their reader rather than prevented (the
/// daemon's request spool: recovery turns a missing or garbled spool
/// into an explicit error record).  Use atomic_publish when a torn file
/// must never be observed.  Returns "" on success, else an error.
[[nodiscard]] std::string write_durable(const std::string& path,
                                        std::string_view content);

/// Repairs a JSONL file whose final line is a torn append fragment:
/// truncates the last `fragment_chars` characters (plus the trailing
/// newline, if one follows them) so the next append starts on a fresh
/// line.  Returns "" on success, otherwise an error message.
[[nodiscard]] std::string truncate_torn_tail(const std::string& path,
                                             std::size_t fragment_chars);

}  // namespace sst
