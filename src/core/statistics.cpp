#include "core/statistics.h"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "ckpt/serializer.h"
#include "obs/json_util.h"

namespace sst {

void Counter::ckpt_io(ckpt::Serializer& s) { s & count_; }

void Accumulator::ckpt_io(ckpt::Serializer& s) {
  s & count_ & sum_ & sum_sq_ & min_ & max_;
}

void Histogram::ckpt_io(ckpt::Serializer& s) {
  // Geometry (lo_/width_/bins_.size()) is construction state; only the
  // accumulated tallies travel through the checkpoint.
  s & bins_ & underflow_ & overflow_ & count_;
}

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<StatField> Accumulator::fields() const {
  return {
      {"count", static_cast<double>(count_)},
      {"sum", sum_},
      {"mean", mean()},
      {"stddev", std::sqrt(variance())},
      {"min", min()},
      {"max", max()},
  };
}

Histogram::Histogram(std::string component, std::string name, double lo,
                     double width, std::size_t nbins)
    : Statistic(std::move(component), std::move(name)),
      lo_(lo),
      width_(width),
      bins_(nbins, 0) {
  if (width <= 0.0) throw ConfigError("Histogram: bin width must be > 0");
  if (nbins == 0) throw ConfigError("Histogram: need at least one bin");
}

void Histogram::add(double v) {
  ++count_;
  if (v < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (v - lo_) / width_;
  if (offset >= static_cast<double>(bins_.size())) {
    ++overflow_;
    return;
  }
  ++bins_[static_cast<std::size_t>(offset)];
}

double Histogram::percentile(double p) const {
  if (p < 0.0 || p > 1.0) throw ConfigError("percentile: p outside [0,1]");
  if (count_ == 0) return lo_;
  const double target = p * static_cast<double>(count_);
  double running = static_cast<double>(underflow_);
  if (running >= target) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    running += static_cast<double>(bins_[i]);
    if (running >= target) return bin_lo(i) + width_;
  }
  return bin_lo(bins_.size() - 1) + width_;
}

std::vector<StatField> Histogram::fields() const {
  std::vector<StatField> out;
  out.push_back({"count", static_cast<double>(count_)});
  out.push_back({"underflow", static_cast<double>(underflow_)});
  out.push_back({"overflow", static_cast<double>(overflow_)});
  out.push_back({"p50", percentile(0.50)});
  out.push_back({"p95", percentile(0.95)});
  out.push_back({"p99", percentile(0.99)});
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;  // keep output compact
    out.push_back({"bin[" + std::to_string(bin_lo(i)) + "]",
                   static_cast<double>(bins_[i])});
  }
  return out;
}

const Statistic* StatisticsRegistry::find(std::string_view component,
                                          std::string_view name) const {
  for (const auto& s : stats_) {
    if (s->component() == component && s->name() == name) return s.get();
  }
  return nullptr;
}

void StatisticsRegistry::write_console(std::ostream& os) const {
  os << "--- statistics ---\n";
  for (const auto& s : stats_) {
    os << s->component() << "." << s->name() << ":";
    for (const auto& f : s->fields()) {
      os << " " << f.name << "=" << std::setprecision(6) << f.value;
    }
    os << "\n";
  }
}

void StatisticsRegistry::write_csv(std::ostream& os) const {
  os << "component,statistic,field,value\n";
  for (const auto& s : stats_) {
    for (const auto& f : s->fields()) {
      os << csv_escape(s->component()) << "," << csv_escape(s->name()) << ","
         << csv_escape(f.name) << "," << std::setprecision(12) << f.value
         << "\n";
    }
  }
}

void StatisticsRegistry::write_json(std::ostream& os) const {
  os << "[";
  bool first_stat = true;
  for (const auto& s : stats_) {
    os << (first_stat ? "\n" : ",\n");
    first_stat = false;
    os << "{\"component\":\"" << obs::json_escape(s->component())
       << "\",\"statistic\":\"" << obs::json_escape(s->name())
       << "\",\"fields\":{";
    bool first_field = true;
    for (const auto& f : s->fields()) {
      if (!first_field) os << ",";
      first_field = false;
      os << "\"" << obs::json_escape(f.name)
         << "\":" << obs::json_number(f.value);
    }
    os << "}}";
  }
  os << "\n]\n";
}

}  // namespace sst
