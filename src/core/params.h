// Params: string-keyed configuration parameters for components.
//
// Mirrors SST's Params: every component is configured from a flat map of
// strings; typed accessors parse on demand (including UnitAlgebra
// quantities) and report precise errors.  Key reads are tracked so the
// framework can flag unused (usually misspelled) parameters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "core/unit_algebra.h"

namespace sst {

class Params {
 public:
  Params() = default;
  Params(std::initializer_list<std::pair<const std::string, std::string>> kv)
      : values_(kv) {}

  void set(std::string key, std::string value) {
    values_[std::move(key)] = std::move(value);
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    return values_.find(std::string(key)) != values_.end();
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Typed lookup with a default.  Supported T: std::string, bool,
  /// integral types, double, UnitAlgebra.
  template <typename T>
  [[nodiscard]] T find(std::string_view key, const T& default_value) const;

  /// Convenience overload for string literals.
  [[nodiscard]] std::string find(std::string_view key,
                                 const char* default_value) const {
    return find<std::string>(key, default_value);
  }

  /// Typed lookup of a required parameter; throws ConfigError if missing.
  template <typename T>
  [[nodiscard]] T required(std::string_view key) const;

  /// Parses "a,b,c" into a vector of T.
  template <typename T>
  [[nodiscard]] std::vector<T> find_array(std::string_view key) const;

  /// A time/frequency parameter converted to picoseconds.
  /// Accepts either a period ("2ns") or frequency ("500MHz").
  [[nodiscard]] SimTime find_period(std::string_view key,
                                    std::string_view default_value) const;

  /// A time parameter converted to picoseconds ("10ns" -> 10000).
  [[nodiscard]] SimTime find_time(std::string_view key,
                                  std::string_view default_value) const;

  /// Returns a new Params containing keys with the given prefix, with the
  /// prefix stripped (e.g. scope("l1.") maps "l1.size" -> "size").
  [[nodiscard]] Params scope(std::string_view prefix) const;

  /// Merges other into this; other's values win on conflicts.
  void merge(const Params& other);

  /// Keys present but never read through any accessor.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  /// All keys, sorted.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Raw access (marks the key as used).
  [[nodiscard]] std::optional<std::string> raw(std::string_view key) const;

 private:
  [[nodiscard]] const std::string* lookup(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
  mutable std::set<std::string, std::less<>> used_;
};

namespace detail {
// Parses `text` as a T; `key` only feeds error messages.
template <typename T>
T parse_param(const std::string& text, std::string_view key);
}  // namespace detail

template <typename T>
T Params::find(std::string_view key, const T& default_value) const {
  const std::string* v = lookup(key);
  if (v == nullptr) return default_value;
  return detail::parse_param<T>(*v, key);
}

template <typename T>
T Params::required(std::string_view key) const {
  const std::string* v = lookup(key);
  if (v == nullptr)
    throw ConfigError("missing required parameter '" + std::string(key) + "'");
  return detail::parse_param<T>(*v, key);
}

template <typename T>
std::vector<T> Params::find_array(std::string_view key) const {
  const std::string* v = lookup(key);
  std::vector<T> out;
  if (v == nullptr) return out;
  std::size_t start = 0;
  const std::string& s = *v;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    std::string piece = s.substr(start, comma - start);
    // Trim surrounding whitespace.
    while (!piece.empty() && std::isspace(static_cast<unsigned char>(piece.front())))
      piece.erase(piece.begin());
    while (!piece.empty() && std::isspace(static_cast<unsigned char>(piece.back())))
      piece.pop_back();
    if (!piece.empty()) out.push_back(detail::parse_param<T>(piece, key));
    start = comma + 1;
  }
  return out;
}

}  // namespace sst
