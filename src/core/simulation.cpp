#include "core/simulation.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <queue>
#include <thread>
#include <utility>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sst {

namespace {
// Largest sync window used when partitions share no links (infinite
// lookahead would otherwise let a rank run past a primary-exit decision).
constexpr SimTime kMaxSyncWindow = 10 * kMicrosecond;
// Safety valve for init phases (a component that stages data every phase
// forever is a bug, not a workload).
constexpr unsigned kMaxInitPhases = 64;
}  // namespace

Simulation::Simulation(SimConfig config) : config_(config) {
  if (config_.num_ranks == 0) throw ConfigError("num_ranks must be >= 1");
  ranks_ = std::vector<RankState>(config_.num_ranks);
}

Simulation::~Simulation() {
  // Clear a dangling build context if a constructor threw mid-build.
  if (build_context() == this) build_context() = nullptr;
}

Simulation*& Simulation::build_context() {
  thread_local Simulation* ctx = nullptr;
  return ctx;
}

void Simulation::begin_component(const std::string& name) {
  if (state_ != State::kBuilding) {
    throw ConfigError("add_component after initialize()");
  }
  if (constructing_) {
    throw ConfigError(
        "nested add_component (components must not create components)");
  }
  if (name.empty()) throw ConfigError("component name must not be empty");
  if (component_names_.contains(name)) {
    throw ConfigError("duplicate component name '" + name + "'");
  }
  pending_name_ = name;
  constructing_ = true;
  build_context() = this;
}

Component* Simulation::end_component(std::unique_ptr<Component> comp) {
  constructing_ = false;
  build_context() = nullptr;
  Component* raw = comp.get();
  component_names_.emplace(raw->name_, raw->id_);
  components_.push_back(std::move(comp));
  return raw;
}

void Simulation::abort_component() {
  constructing_ = false;
  build_context() = nullptr;
}

Link* Simulation::create_link(ComponentId owner, std::string_view port,
                              EventHandler handler, bool polling,
                              bool optional) {
  auto key = std::make_pair(owner, std::string(port));
  if (ports_.contains(key)) {
    throw ConfigError("duplicate port '" + std::string(port) +
                      "' on component '" + components_raw_name(owner) + "'");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  if (id >= Event::kClockSourceBase) {
    throw ConfigError("too many link endpoints");
  }
  links_.push_back(std::unique_ptr<Link>(new Link(
      *this, id, owner, std::string(port), std::move(handler), polling,
      optional)));
  Link* link = links_.back().get();
  ports_.emplace(std::move(key), link);
  return link;
}

Link* Simulation::create_self_link(ComponentId owner, std::string_view name,
                                   SimTime latency, EventHandler handler) {
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(std::unique_ptr<Link>(
      new Link(*this, id, owner, "self:" + std::string(name),
               std::move(handler), /*polling=*/false, /*optional=*/false)));
  Link* link = links_.back().get();
  link->peer_ = link;
  link->latency_ = latency;
  return link;
}

std::string Simulation::components_raw_name(ComponentId id) const {
  // Valid during construction: the component being built is not yet in
  // components_, so fall back to the pending name.
  if (id < components_.size()) return components_[id]->name();
  return pending_name_;
}

void Simulation::connect(const std::string& comp_a, const std::string& port_a,
                         const std::string& comp_b, const std::string& port_b,
                         SimTime latency_ps) {
  connect(comp_a, port_a, comp_b, port_b, latency_ps, latency_ps);
}

void Simulation::connect(const std::string& comp_a, const std::string& port_a,
                         const std::string& comp_b, const std::string& port_b,
                         SimTime latency_a_to_b, SimTime latency_b_to_a) {
  if (state_ != State::kBuilding) {
    throw ConfigError("connect after initialize()");
  }
  if (latency_a_to_b == 0 || latency_b_to_a == 0) {
    throw ConfigError("link latency must be >= 1ps (" + comp_a + "." +
                      port_a + " <-> " + comp_b + "." + port_b + ")");
  }
  connections_.push_back(
      {comp_a, port_a, comp_b, port_b, latency_a_to_b, latency_b_to_a});
}

void Simulation::install_link_fault(const std::string& component,
                                    const std::string& port,
                                    std::unique_ptr<LinkFault> fault) {
  if (!fault) throw ConfigError("install_link_fault: null fault model");
  if (state_ == State::kRunning || state_ == State::kDone) {
    throw ConfigError("install_link_fault after run()");
  }
  auto it = component_names_.find(component);
  if (it == component_names_.end()) {
    throw ConfigError("install_link_fault: unknown component '" + component +
                      "'");
  }
  auto pit = ports_.find({it->second, port});
  if (pit == ports_.end()) {
    throw ConfigError("install_link_fault: component '" + component +
                      "' has no port '" + port + "'");
  }
  pit->second->fault_ = std::move(fault);
}

void Simulation::set_component_rank(const std::string& name, RankId rank) {
  if (rank >= config_.num_ranks) {
    throw ConfigError("rank " + std::to_string(rank) + " out of range for '" +
                      name + "'");
  }
  pinned_ranks_[name] = rank;
}

Component* Simulation::find_component(const std::string& name) const {
  auto it = component_names_.find(name);
  if (it == component_names_.end()) return nullptr;
  return components_[it->second].get();
}

RankId Simulation::component_rank(ComponentId id) const {
  if (id >= components_.size()) {
    throw ConfigError("component id out of range");
  }
  return components_[id]->rank_;
}

SimTime Simulation::time(std::string_view text) {
  return UnitAlgebra(text).to_simtime();
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

void Simulation::assign_ranks() {
  const unsigned R = config_.num_ranks;
  const std::size_t N = components_.size();
  if (R == 1) {
    for (auto& c : components_) c->rank_ = 0;
  } else {
    switch (config_.partition) {
      case PartitionStrategy::kLinear: {
        // Contiguous blocks in creation order.  Creation order usually
        // follows system structure (node 0's parts, node 1's parts, ...),
        // so this is SST's default partitioner too.
        const std::size_t per = (N + R - 1) / R;
        for (std::size_t i = 0; i < N; ++i) {
          components_[i]->rank_ = static_cast<RankId>(std::min<std::size_t>(
              i / std::max<std::size_t>(per, 1), R - 1));
        }
        break;
      }
      case PartitionStrategy::kRoundRobin: {
        for (std::size_t i = 0; i < N; ++i) {
          components_[i]->rank_ = static_cast<RankId>(i % R);
        }
        break;
      }
      case PartitionStrategy::kMinCut: {
        assign_ranks_mincut();
        break;
      }
    }
  }
  // Explicit pins override the partitioner.
  for (const auto& [name, rank] : pinned_ranks_) {
    auto it = component_names_.find(name);
    if (it == component_names_.end()) {
      throw ConfigError("set_component_rank: unknown component '" + name +
                        "'");
    }
    components_[it->second]->rank_ = rank;
  }
}

void Simulation::assign_ranks_mincut() {
  // Two-stage heuristic: (1) BFS-grown blocks over the connection graph
  // give a connected initial partition; (2) Kernighan-Lin-style greedy
  // refinement moves boundary components to the rank where they have the
  // most neighbours, subject to balance, until no move reduces the cut.
  // Deterministic throughout (fixed visit order).
  const unsigned R = config_.num_ranks;
  const std::size_t N = components_.size();
  std::vector<std::vector<ComponentId>> adj(N);
  for (const auto& c : connections_) {
    auto a = component_names_.find(c.comp_a);
    auto b = component_names_.find(c.comp_b);
    if (a == component_names_.end() || b == component_names_.end()) continue;
    adj[a->second].push_back(b->second);
    adj[b->second].push_back(a->second);
  }

  // Stage 1: BFS growth from pseudo-peripheral seeds — each new block
  // starts at the unassigned component farthest from everything assigned
  // so far, so blocks grow as compact tiles instead of interleaving.
  std::vector<RankId> rank(N, static_cast<RankId>(R - 1));
  std::vector<bool> assigned(N, false);
  const std::size_t quota = (N + R - 1) / R;
  auto pick_far_seed = [&]() -> std::size_t {
    // Multi-source BFS from the assigned set; farthest unassigned vertex
    // wins (lowest id on ties).  With nothing assigned yet, vertex 0.
    std::vector<std::uint32_t> dist(N, ~0U);
    std::queue<ComponentId> q;
    for (std::size_t i = 0; i < N; ++i) {
      if (assigned[i]) {
        dist[i] = 0;
        q.push(static_cast<ComponentId>(i));
      }
    }
    if (q.empty()) return 0;
    while (!q.empty()) {
      const ComponentId v = q.front();
      q.pop();
      for (ComponentId w : adj[v]) {
        if (dist[w] == ~0U) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
      }
    }
    std::size_t best = N;
    std::uint32_t best_dist = 0;
    for (std::size_t i = 0; i < N; ++i) {
      if (assigned[i]) continue;
      // Unreachable (disconnected) vertices are the farthest of all.
      const std::uint32_t d = dist[i] == ~0U ? ~0U - 1 : dist[i];
      if (best == N || d > best_dist) {
        best = i;
        best_dist = d;
      }
    }
    return best;
  };
  // Best-first growth: always absorb the frontier vertex with the most
  // edges into the growing block (ties to the lowest id), which keeps
  // blocks compact instead of the plus-shapes FIFO BFS produces.
  std::vector<std::uint32_t> edges_into_block(N, 0);
  for (unsigned r = 0; r < R; ++r) {
    std::size_t filled = 0;
    std::vector<ComponentId> frontier;
    std::fill(edges_into_block.begin(), edges_into_block.end(), 0);
    while (filled < quota) {
      if (frontier.empty()) {
        const std::size_t seed = pick_far_seed();
        if (seed >= N) break;
        frontier.push_back(static_cast<ComponentId>(seed));
      }
      std::size_t pick = 0;
      for (std::size_t i = 1; i < frontier.size(); ++i) {
        const ComponentId a = frontier[i];
        const ComponentId b = frontier[pick];
        if (edges_into_block[a] > edges_into_block[b] ||
            (edges_into_block[a] == edges_into_block[b] && a < b)) {
          pick = i;
        }
      }
      const ComponentId v = frontier[pick];
      frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
      if (assigned[v]) continue;
      assigned[v] = true;
      rank[v] = static_cast<RankId>(r);
      ++filled;
      for (ComponentId w : adj[v]) {
        if (!assigned[w]) {
          if (edges_into_block[w] == 0) frontier.push_back(w);
          ++edges_into_block[w];
        }
      }
    }
  }

  // Stage 2: Kernighan-Lin-style refinement.  Alternates two kinds of
  // deterministic greedy passes until neither changes anything:
  //   * move passes — relocate a vertex to the rank holding more of its
  //     neighbours (subject to balance);
  //   * swap passes — exchange two vertices between ranks when the
  //     combined gain is positive (fixes block *shapes*, which single
  //     moves cannot under tight balance).
  std::vector<std::size_t> size(R, 0);
  for (std::size_t i = 0; i < N; ++i) ++size[rank[i]];
  const std::size_t per = N / R;
  const std::size_t slack = std::max<std::size_t>(1, per / 8);
  const std::size_t size_max = quota + slack;
  const std::size_t size_min = per > slack ? per - slack : 1;

  // edges_to[v][r]: number of v's graph edges whose other end is in r.
  std::vector<std::vector<std::uint32_t>> edges_to(
      N, std::vector<std::uint32_t>(R, 0));
  auto recount = [&](std::size_t v) {
    std::fill(edges_to[v].begin(), edges_to[v].end(), 0);
    for (ComponentId w : adj[v]) ++edges_to[v][rank[w]];
  };
  for (std::size_t v = 0; v < N; ++v) recount(v);
  auto relocate = [&](std::size_t v, RankId to) {
    const RankId from = rank[v];
    rank[v] = to;
    for (ComponentId u : adj[v]) {
      --edges_to[u][from];
      ++edges_to[u][to];
    }
  };

  for (int round = 0; round < 8; ++round) {
    bool changed = false;

    // Move pass.
    for (std::size_t v = 0; v < N; ++v) {
      if (adj[v].empty()) continue;
      const RankId cur = rank[v];
      RankId best = cur;
      std::int64_t best_gain = 0;
      for (RankId r = 0; r < R; ++r) {
        if (r == cur || size[r] >= size_max) continue;
        const std::int64_t gain =
            static_cast<std::int64_t>(edges_to[v][r]) -
            static_cast<std::int64_t>(edges_to[v][cur]);
        if (gain > best_gain) {
          best_gain = gain;
          best = r;
        }
      }
      if (best != cur && size[cur] > size_min) {
        --size[cur];
        ++size[best];
        relocate(v, best);
        changed = true;
      }
    }

    // Swap pass (balance-preserving, so no size checks needed).
    for (std::size_t v = 0; v < N; ++v) {
      if (adj[v].empty()) continue;
      const RankId rv = rank[v];
      std::size_t best_w = N;
      std::int64_t best_gain = 0;
      for (std::size_t w = v + 1; w < N; ++w) {
        const RankId rw = rank[w];
        if (rw == rv || adj[w].empty()) continue;
        std::int64_t gain =
            static_cast<std::int64_t>(edges_to[v][rw]) -
            static_cast<std::int64_t>(edges_to[v][rv]) +
            static_cast<std::int64_t>(edges_to[w][rv]) -
            static_cast<std::int64_t>(edges_to[w][rw]);
        // If v and w are adjacent, their shared edges were counted as
        // gains on both sides but stay cut after the swap.
        for (ComponentId u : adj[v]) {
          if (u == w) gain -= 2;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_w = w;
        }
      }
      if (best_w < N) {
        const RankId rw = rank[best_w];
        relocate(v, rw);
        relocate(best_w, rv);
        changed = true;
      }
    }

    if (!changed) break;
  }

  for (std::size_t i = 0; i < N; ++i) {
    components_[i]->rank_ = rank[i];
  }
}

// ---------------------------------------------------------------------
// Wiring
// ---------------------------------------------------------------------

void Simulation::wire_links() {
  for (const auto& c : connections_) {
    auto ca = component_names_.find(c.comp_a);
    if (ca == component_names_.end()) {
      throw ConfigError("connect: unknown component '" + c.comp_a + "'");
    }
    auto cb = component_names_.find(c.comp_b);
    if (cb == component_names_.end()) {
      throw ConfigError("connect: unknown component '" + c.comp_b + "'");
    }
    auto pa = ports_.find({ca->second, c.port_a});
    if (pa == ports_.end()) {
      throw ConfigError("connect: component '" + c.comp_a +
                        "' has no port '" + c.port_a + "'");
    }
    auto pb = ports_.find({cb->second, c.port_b});
    if (pb == ports_.end()) {
      throw ConfigError("connect: component '" + c.comp_b +
                        "' has no port '" + c.port_b + "'");
    }
    Link* la = pa->second;
    Link* lb = pb->second;
    if (la->peer_ != nullptr || lb->peer_ != nullptr) {
      throw ConfigError("port connected twice: " + c.comp_a + "." + c.port_a +
                        " <-> " + c.comp_b + "." + c.port_b);
    }
    la->peer_ = lb;
    lb->peer_ = la;
    la->latency_ = c.latency_ab;
    lb->latency_ = c.latency_ba;
  }

  // Check for dangling required ports and record which component each
  // link delivers into (the receiving endpoint's owner).  Link objects
  // and their owners never change after this point — migration only
  // rewrites rank fields — so link_target_ is built once.
  link_target_.assign(links_.size(), kInvalidComponent);
  for (const auto& link : links_) {
    if (link->peer_ == nullptr) {
      if (!link->optional_) {
        throw ConfigError("port never connected: '" +
                          components_[link->owner_]->name() + "." +
                          link->port_ + "'");
      }
      continue;
    }
    link_target_[link->id_] = link->peer_->owner_;
  }
  refresh_partition();
}

void Simulation::refresh_partition() {
  // Everything derived from component ranks: link endpoint ranks, the
  // lookahead (global and per sending rank) and the cut-link count.
  // Called from wire_links at initialization, after checkpoint restore,
  // and at a sync barrier after migrations moved components.
  lookahead_ = kTimeNever;
  cut_links_ = 0;
  rank_min_out_.assign(config_.num_ranks, kTimeNever);
  for (const auto& link : links_) {
    link->owner_rank_ = components_[link->owner_]->rank_;
    if (link->peer_ == nullptr) continue;
    link->peer_rank_ = components_[link->peer_->owner_]->rank_;
    if (link->owner_rank_ != link->peer_rank_) {
      ++cut_links_;
      lookahead_ = std::min(lookahead_, link->latency_);
      rank_min_out_[link->owner_rank_] =
          std::min(rank_min_out_[link->owner_rank_], link->latency_);
    }
  }
  if (config_.num_ranks > 1 && lookahead_ == kTimeNever) {
    // Independent partitions: bound windows so termination votes happen.
    lookahead_ = kMaxSyncWindow;
  }
  lookahead_ = std::min(lookahead_, kMaxSyncWindow);
}

void Simulation::register_component_clock(ComponentId comp, SimTime period,
                                          ClockHandler handler) {
  if (state_ == State::kBuilding) {
    pending_clocks_.push_back({comp, period, std::move(handler)});
  } else {
    get_clock(components_[comp]->rank_, period)
        ->add_handler(comp, std::move(handler));
  }
}

Clock* Simulation::get_clock(RankId rank, SimTime period) {
  auto key = std::make_pair(rank, period);
  auto it = clocks_.find(key);
  if (it == clocks_.end()) {
    it = clocks_
             .emplace(key, std::unique_ptr<Clock>(
                               new Clock(*this, rank, period)))
             .first;
  }
  return it->second.get();
}

// ---------------------------------------------------------------------
// Initialization
// ---------------------------------------------------------------------

void Simulation::initialize() {
  if (state_ != State::kBuilding) return;
  assign_ranks();
  wire_links();
  // Synchronization-mode validation.  Serial runs ignore the mode (there
  // is nothing to synchronize), so the rules below only bind when the
  // run is actually parallel.
  if (config_.num_ranks > 1) {
    if (config_.sync_mode == SyncMode::kLax) {
      if (config_.lax_skew < 1) {
        throw ConfigError(
            "sync: lax mode needs a skew bound of >= 1ps "
            "(--lax-skew, or \"lax_skew\" in the SDL config section)");
      }
      if (config_.checkpoint_period > 0 || config_.checkpoint_wall > 0) {
        throw ConfigError(
            "sync: checkpointing requires conservative or adaptive "
            "synchronization; lax mode corrects event timestamps, so a "
            "snapshot could not resume bit-exactly");
      }
    } else if (config_.lax_skew > 0) {
      throw ConfigError(
          "sync: lax_skew is only meaningful with sync_mode=lax (current "
          "mode: " +
          std::string(sync_mode_name(config_.sync_mode)) + ")");
    }
    if (config_.sync_mode == SyncMode::kAdaptive &&
        config_.sync_window_max > 0 && config_.sync_window_max < lookahead_) {
      throw ConfigError(
          "sync: sync_window_max " + std::to_string(config_.sync_window_max) +
          "ps is smaller than the conservative lookahead of " +
          std::to_string(lookahead_) +
          "ps; the adaptive window never shrinks below the lookahead");
    }
  }
  // Online rebalancing: serial runs ignore the flag (there is only one
  // rank), matching the sync-mode rules above.  The controller validates
  // the tuning; lax mode gets a derived, more aggressive variant — lax
  // already trades strict reproducibility for throughput, so it may
  // chase imbalance harder.
  if (config_.rebalance && config_.num_ranks > 1) {
    RebalanceConfig rc;
    rc.threshold = config_.rebalance_threshold;
    rc.period = config_.rebalance_period;
    rc.max_moves = config_.rebalance_max_moves;
    if (config_.sync_mode == SyncMode::kLax) {
      rc.threshold = 1.0 + (rc.threshold - 1.0) / 2.0;
      rc.period = std::max<std::uint64_t>(1, rc.period / 2);
      rc.max_moves = rc.max_moves * 2;
    }
    rebalance_ctl_ =
        std::make_unique<RebalanceController>(rc, config_.num_ranks);
    comp_epoch_events_.assign(components_.size(), 0);
  }
  // Parallel checkpoints are cut at sync-window barriers, so a period
  // shorter than the window cannot be honoured — it would silently snap
  // to the barrier cadence.  Reject it with both values spelled out.
  if (config_.num_ranks > 1 && config_.checkpoint_period > 0 &&
      config_.checkpoint_period < lookahead_) {
    throw ConfigError(
        "checkpointing: period " + std::to_string(config_.checkpoint_period) +
        "ps is shorter than the parallel sync window (lookahead) of " +
        std::to_string(lookahead_) +
        "ps; checkpoints are cut at sync-window barriers, so use a period "
        ">= the sync window (or run with --ranks 1)");
  }
  // Now that ranks are known, create clocks registered during build.
  for (auto& pc : pending_clocks_) {
    get_clock(components_[pc.comp]->rank_, pc.period)
        ->add_handler(pc.comp, std::move(pc.handler));
  }
  pending_clocks_.clear();
  setup_observability();
  run_init_phases();
  state_ = State::kInitialized;
  for (auto& c : components_) c->setup();
}

void Simulation::run_init_phases() {
  unsigned phase = 0;
  do {
    init_data_sent_ = false;
    init_phase_active_ = true;
    for (auto& c : components_) c->init(phase);
    init_phase_active_ = false;
    // Deliver staged init data for the next phase.
    for (auto& link : links_) {
      while (!link->init_staging_.empty()) {
        link->peer_->init_queue_.push_back(
            std::move(link->init_staging_.front()));
        link->init_staging_.pop_front();
      }
    }
    ++phase;
    if (phase > kMaxInitPhases) {
      throw SimulationError("init phases did not converge (component keeps "
                            "sending init data)");
    }
  } while (init_data_sent_);
}

// ---------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------

void Simulation::flush_outbox(RankId me) {
  RankState& src = ranks_[me];
  std::uint64_t staged = 0;
  for (RankId dst = 0; dst < src.outbox.size(); ++dst) {
    auto& buf = src.outbox[dst];
    if (buf.empty()) continue;
    staged += buf.size();
    {
      std::lock_guard<std::mutex> lock(ranks_[dst].mailbox_mutex);
      auto& mailbox = ranks_[dst].mailbox;
      for (auto& ev : buf) mailbox.push_back(std::move(ev));
    }
    buf.clear();  // capacity is reused by the next window
    ++src.outbox_flushes;
  }
  if (staged > 0) {
    // One atomic add per flushed buffer set instead of one per event.
    cross_rank_events_.fetch_add(staged, std::memory_order_relaxed);
  }
}

void Simulation::drain_mailbox(RankState& rank) {
  std::vector<EventPtr>& incoming = rank.drain_scratch;
  {
    std::lock_guard<std::mutex> lock(rank.mailbox_mutex);
    incoming.swap(rank.mailbox);
  }
  rank.mailbox_received += incoming.size();
  // Deterministic total order independent of sender thread interleaving:
  // EventOrder is (time, priority, source link, per-link sequence).
  std::sort(incoming.begin(), incoming.end(),
            [](const EventPtr& a, const EventPtr& b) {
              return EventOrder{}(*a, *b);
            });
  if (lax_active_) {
    // Lax contract: a straggler (an event whose timestamp this rank has
    // already run past) is applied at the rank's current time instead of
    // being delivered into the past.  The correction is < the configured
    // skew: arrivals are >= the previous window's conservative horizon,
    // and rank.now < that horizon + skew.  The vector is time-sorted, so
    // stragglers form a prefix; corrected events keep their deterministic
    // (priority, source, sequence) order at the corrected time.
    const SimTime now = rank.now;
    for (auto& ev : incoming) {
      if (ev->delivery_time_ >= now) break;
      const SimTime skew = now - ev->delivery_time_;
      ev->delivery_time_ = now;
      ++rank.lax_stragglers;
      if (skew > rank.lax_max_skew) rank.lax_max_skew = skew;
    }
  }
  for (auto& ev : incoming) rank.vortex.insert(std::move(ev));
  // The swap left the (empty) scratch capacity in the mailbox; clearing
  // here leaves this window's capacity staged for the next drain.
  incoming.clear();
}

// ---------------------------------------------------------------------
// Run loops
// ---------------------------------------------------------------------

RunStats Simulation::run() {
  if (state_ == State::kBuilding) initialize();
  if (state_ == State::kDone) {
    throw SimulationError("Simulation::run called twice");
  }
  if (rebalance_ctl_ != nullptr && !migrator_) {
    throw ConfigError(
        "rebalance: no migrator installed; call ckpt::install_migrator() "
        "(ConfigGraph::build does this automatically when rebalancing is "
        "enabled)");
  }
  state_ = State::kRunning;
  if (metrics_) build_metrics_index();

  // Wall-clock watchdog: a side thread sleeps for the budget and raises a
  // flag the run loops poll.  A finished run cancels the wait and joins.
  // Checkpoint writes suspend the countdown: their wall time accumulates
  // in ckpt_pause_ns_ and extends the deadline, and an expiry observed
  // while a write is in flight is deferred until the write completes, so
  // a slow disk cannot convert a healthy run into a spurious abort.
  watchdog_fired_.store(false, std::memory_order_relaxed);
  std::thread watchdog;
  std::mutex wd_mutex;
  std::condition_variable wd_cv;
  bool wd_cancel = false;
  if (config_.watchdog_seconds > 0) {
    watchdog = std::thread([this, &wd_mutex, &wd_cv, &wd_cancel] {
      std::unique_lock<std::mutex> lock(wd_mutex);
      const auto start = std::chrono::steady_clock::now();
      const auto budget =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.watchdog_seconds));
      for (;;) {
        auto deadline =
            start + budget +
            std::chrono::nanoseconds(
                ckpt_pause_ns_.load(std::memory_order_relaxed));
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          if (ckpt_writing_.load(std::memory_order_acquire)) {
            // Snapshot in flight: re-check shortly; its duration will be
            // credited to the budget when it finishes.
            deadline = now + std::chrono::milliseconds(50);
          } else {
            watchdog_fired_.store(true, std::memory_order_relaxed);
            return;
          }
        }
        if (wd_cv.wait_until(lock, deadline,
                             [&wd_cancel] { return wd_cancel; })) {
          return;
        }
      }
    });
  }
  auto stop_watchdog = [&] {
    if (!watchdog.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(wd_mutex);
      wd_cancel = true;
    }
    wd_cv.notify_all();
    watchdog.join();
  };

  const auto wall_start = std::chrono::steady_clock::now();
  ckpt_last_wall_ = wall_start;
  try {
    if (config_.num_ranks == 1) {
      run_serial();
    } else {
      run_parallel();
    }
  } catch (...) {
    stop_watchdog();
    state_ = State::kDone;
    throw;
  }
  const auto wall_end = std::chrono::steady_clock::now();
  stop_watchdog();

  if (watchdog_fired_.load(std::memory_order_relaxed)) {
    state_ = State::kDone;
    // Best-effort trace/metrics flush so the aborted run can be inspected.
    flush_observability(/*nothrow=*/true);
    throw WatchdogError(diagnostic_report(
        "watchdog: wall-clock budget of " +
        std::to_string(config_.watchdog_seconds) + "s exceeded"));
  }
  if (config_.detect_deadlock &&
      primary_count_.load(std::memory_order_acquire) > 0 &&
      !primaries_done()) {
    bool drained = true;
    for (const auto& r : ranks_) drained = drained && r.vortex.empty();
    if (drained) {
      state_ = State::kDone;
      flush_observability(/*nothrow=*/true);
      throw DeadlockError(diagnostic_report(
          "deadlock: no events pending but primary components never "
          "signalled completion"));
    }
  }

  state_ = State::kDone;
  finish_components();

  run_stats_.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  run_stats_.events_processed = 0;
  for (const auto& r : ranks_) run_stats_.events_processed += r.events;
  run_stats_.clock_ticks = 0;
  for (const auto& [key, clock] : clocks_) {
    (void)key;
    run_stats_.clock_ticks += clock->ticks();
  }
  run_stats_.cross_rank_events =
      cross_rank_events_.load(std::memory_order_relaxed);
  run_stats_.pool_allocs = 0;
  run_stats_.pool_recycles = 0;
  for (const auto& [key, clock] : clocks_) {
    (void)key;
    run_stats_.pool_allocs += clock->tick_allocs();
    run_stats_.pool_recycles += clock->tick_recycles();
  }
  run_stats_.exchange_flushes = 0;
  for (const auto& r : ranks_) run_stats_.exchange_flushes += r.outbox_flushes;
  run_stats_.cut_links = cut_links_;
  run_stats_.lookahead = config_.num_ranks > 1 ? lookahead_ : 0;
  run_stats_.sync_mode = config_.sync_mode;
  run_stats_.lax_stragglers = 0;
  run_stats_.lax_max_skew = 0;
  for (const auto& r : ranks_) {
    run_stats_.lax_stragglers += r.lax_stragglers;
    run_stats_.lax_max_skew = std::max(run_stats_.lax_max_skew,
                                       r.lax_max_skew);
  }
  if (lax_straggler_stat_ != nullptr) {
    lax_straggler_stat_->add(run_stats_.lax_stragglers);
    lax_skew_stat_->add(static_cast<double>(run_stats_.lax_max_skew));
  }
  run_stats_.rebalances = rebalances_;
  run_stats_.components_migrated = comps_migrated_;
  run_stats_.checkpoints = ckpt_taken_;
  run_stats_.checkpoint_seconds = ckpt_write_seconds_;
  SimTime final_time = 0;
  for (const auto& r : ranks_) final_time = std::max(final_time, r.now);
  run_stats_.final_time = final_time;

  if (config_.profile_engine) {
    finalize_engine_stats(run_stats_.wall_seconds);
  }
  flush_observability(/*nothrow=*/false);

  if (config_.verbose) {
    std::cerr << "[sst] run complete: " << run_stats_.events_processed
              << " events, " << run_stats_.sync_windows << " windows, t="
              << run_stats_.final_time << "ps, wall="
              << run_stats_.wall_seconds << "s\n";
  }
  return run_stats_;
}

void Simulation::run_serial() {
  RankState& rank = ranks_[0];
  const SimTime end = config_.end_time;
  const bool ckpt = checkpointing();
  std::uint64_t steps = 0;
  while (!rank.vortex.empty()) {
    if (primaries_done()) break;
    if ((++steps & kEnginePollMask) == 0 &&
        watchdog_fired_.load(std::memory_order_relaxed)) {
      return;
    }
    const SimTime t = rank.vortex.next_time();
    if (t > end) {
      rank.now = end;
      return;
    }
    // Safe point: the checkpoint lands between two events, with the
    // pending one still in the vortex.  The wall-clock trigger is only
    // polled every kEnginePollInterval events to keep it off the hot
    // path.
    if (ckpt && checkpoint_due(t, (steps & kEnginePollMask) == 0)) {
      take_checkpoint();
    }
    EventPtr ev = rank.vortex.pop();
    rank.now = t;
    ++rank.events;
    if (tracer_ && ev->link_id_ < Event::kClockSourceBase) {
      tracer_->record_delivery(0, t, ev->link_id_, ev->order_);
    }
    const EventHandler* handler = ev->handler_;
    if (handler == nullptr) {
      throw SimulationError("event with no handler in queue");
    }
    (*handler)(std::move(ev));
  }
}

void Simulation::rank_process_until(RankId me, SimTime horizon) {
  RankState& rank = ranks_[me];
  std::uint64_t steps = 0;
  const bool account = rebalance_accounting_;
  while (!rank.vortex.empty()) {
    const SimTime t = rank.vortex.next_time();
    if (t >= horizon) return;
    if ((++steps & kEnginePollMask) == 0 &&
        watchdog_fired_.load(std::memory_order_relaxed)) {
      return;
    }
    EventPtr ev = rank.vortex.pop();
    rank.now = t;
    ++rank.events;
    if (tracer_ && ev->link_id_ < Event::kClockSourceBase) {
      tracer_->record_delivery(me, t, ev->link_id_, ev->order_);
    }
    if (account && ev->link_id_ < Event::kClockSourceBase) {
      // Attribute the delivery to the receiving component; clock ticks
      // are attributed per handler in Clock::tick.
      ++comp_epoch_events_[link_target_[ev->link_id_]];
    }
    const EventHandler* handler = ev->handler_;
    if (handler == nullptr) {
      throw SimulationError("event with no handler in queue");
    }
    (*handler)(std::move(ev));
  }
}

void Simulation::run_parallel() {
  const unsigned R = config_.num_ranks;
  struct Sync {
    SimTime horizon = 0;
    bool done = false;
  };
  Sync sync;
  std::uint64_t windows = 0;
  bool priming = true;  // the first call computes the initial horizon only

  const bool adaptive = config_.sync_mode == SyncMode::kAdaptive;
  const bool lax = config_.sync_mode == SyncMode::kLax;
  lax_active_ = lax;
  // Rebalance accounting: per-component counters written only by the
  // owning rank's thread during a window and read at the barrier.
  rebalance_accounting_ = rebalance_ctl_ != nullptr;
  rank_epoch_mark_.assign(R, 0);
  // Adaptive window controller: starts at the conservative lookahead and
  // earns larger windows from measured barrier overhead.  Bounds were
  // validated in initialize(), so the constructor cannot throw here.
  const SimTime max_window =
      config_.sync_window_max > 0
          ? config_.sync_window_max
          : std::max(lookahead_, kMaxSyncWindow);
  AdaptiveWindowController controller(lookahead_, max_window);
  // Epoch bookkeeping for the controller (single-threaded inside the
  // barrier completion, so plain members suffice).
  auto epoch_wall_last = std::chrono::steady_clock::now();
  double epoch_barrier_last = 0.0;
  std::uint64_t epoch_events_last = 0;
  run_stats_.min_window = 0;
  run_stats_.max_window = 0;

  auto compute_sync = [this, &sync, &windows, &priming, adaptive, lax,
                       &controller, &epoch_wall_last, &epoch_barrier_last,
                       &epoch_events_last, R]() noexcept {
    ++windows;
    if (watchdog_fired_.load(std::memory_order_relaxed)) {
      sync.done = true;
      return;
    }
    SimTime global_min = kTimeNever;
    for (const auto& r : ranks_) {
      global_min = std::min(global_min, r.vortex.next_time());
    }
    if (primaries_done() || global_min == kTimeNever ||
        global_min > config_.end_time) {
      sync.done = true;
      if (global_min > config_.end_time && config_.end_time != kTimeNever) {
        for (auto& r : ranks_) r.now = config_.end_time;
      }
      return;
    }
    // Rebalance check — before the window is computed: a migration can
    // create a new cut link with a smaller latency, and the next horizon
    // must honour the new lookahead to stay causal.  The epoch counter
    // advances on sync windows only (deterministic in conservative mode,
    // where window boundaries are a pure function of the event times).
    if (rebalance_ctl_ != nullptr && !priming &&
        ++rebalance_epoch_ >= rebalance_ctl_->config().period) {
      rebalance_epoch_ = 0;
      maybe_rebalance(global_min);
      if (!rebalance_error_.empty()) {
        sync.done = true;
        return;
      }
    }
    SimTime window = lookahead_;
    if (adaptive) {
      const auto wall_now = std::chrono::steady_clock::now();
      if (!priming) {
        // Feed the finished epoch to the controller: how much of its wall
        // time the ranks spent parked, how much work it retired, and how
        // deep the queues are now.
        const double epoch_wall =
            std::chrono::duration<double>(wall_now - epoch_wall_last)
                .count();
        double barrier_total = 0.0;
        std::uint64_t events_total = 0;
        std::uint64_t depth_total = 0;
        for (const auto& r : ranks_) {
          barrier_total += r.barrier_wait_seconds;
          events_total += r.events;
          depth_total += r.vortex.size();
        }
        SyncEpochStats es;
        if (epoch_wall > 0.0) {
          es.barrier_wait_fraction = std::min(
              1.0, std::max(0.0, (barrier_total - epoch_barrier_last) /
                                     (static_cast<double>(R) * epoch_wall)));
        }
        es.events_processed = events_total - epoch_events_last;
        es.vortex_depth = depth_total;
        window = controller.update(es);
        epoch_barrier_last = barrier_total;
        epoch_events_last = events_total;
      }
      epoch_wall_last = wall_now;
      // Causal cap: rank r cannot influence any other rank before its
      // next event time plus its minimum cross-rank out-latency, so the
      // minimum of those bounds is the exact conservative horizon.  It is
      // never below global_min + lookahead, so adaptive never synchronizes
      // more often than conservative — and never violates causality.
      SimTime safe = kTimeNever;
      for (std::size_t r = 0; r < ranks_.size(); ++r) {
        const SimTime next = ranks_[r].vortex.next_time();
        if (next == kTimeNever || rank_min_out_[r] == kTimeNever) continue;
        safe = std::min(safe, (next >= kTimeNever - rank_min_out_[r])
                                  ? kTimeNever
                                  : next + rank_min_out_[r]);
      }
      if (safe != kTimeNever && window > safe - global_min) {
        window = safe - global_min;
      }
    }
    if (lax) {
      // Ranks may run up to lax_skew past the conservative bound; the
      // resulting stragglers are corrected forward in drain_mailbox by
      // strictly less than that skew.
      window = (window >= kTimeNever - config_.lax_skew)
                   ? kTimeNever
                   : window + config_.lax_skew;
    }
    if (!priming) {
      if (run_stats_.min_window == 0 || window < run_stats_.min_window) {
        run_stats_.min_window = window;
      }
      if (window > run_stats_.max_window) run_stats_.max_window = window;
      if (window_stat_ != nullptr) {
        window_stat_->add(static_cast<double>(window));
      }
    }
    const SimTime horizon = (global_min >= kTimeNever - window)
                                ? kTimeNever
                                : global_min + window;
    sync.horizon = (config_.end_time == kTimeNever)
                       ? horizon
                       : std::min(horizon, config_.end_time + 1);
    // Engine observability: runs single-threaded here (every rank thread
    // is parked in the barrier), so reading all rank states is safe.
    if (priming) {
      // Arm the checkpoint period mark from the first event time, so a
      // restarted run reproduces the original checkpoint schedule.
      if (checkpointing()) (void)checkpoint_due(global_min, false);
      return;
    }
    if (tracer_ && config_.trace_engine) {
      tracer_->record_window(global_min, sync.horizon, windows);
    }
    if (config_.profile_engine && !engine_stats_.empty()) {
      // Per-rank events retired this epoch, and the epoch imbalance
      // ratio (max/mean) — what the rebalance controller sees, visible
      // without tracing.
      std::uint64_t epoch_max = 0;
      std::uint64_t epoch_total = 0;
      for (std::size_t r = 0; r < ranks_.size(); ++r) {
        const std::uint64_t d = ranks_[r].events - rank_epoch_mark_[r];
        epoch_total += d;
        if (d > epoch_max) epoch_max = d;
      }
      const double epoch_imbalance =
          epoch_total == 0
              ? 0.0
              : static_cast<double>(epoch_max) * static_cast<double>(R) /
                    static_cast<double>(epoch_total);
      if (imbalance_stat_ != nullptr && epoch_total > 0) {
        imbalance_stat_->add(epoch_imbalance);
      }
      for (std::size_t r = 0; r < ranks_.size(); ++r) {
        const RankState& rs = ranks_[r];
        const std::uint64_t epoch_events = rs.events - rank_epoch_mark_[r];
        rank_epoch_mark_[r] = rs.events;
        engine_stats_[r].vortex_depth->add(
            static_cast<double>(rs.vortex.size()));
        if (metrics_) {
          std::string payload = "{\"events\":" + std::to_string(rs.events) +
                                ",\"epoch_events\":" +
                                std::to_string(epoch_events) +
                                ",\"imbalance\":" +
                                obs::json_number(epoch_imbalance) +
                                ",\"vortex_depth\":" +
                                std::to_string(rs.vortex.size()) +
                                ",\"mailbox_received\":" +
                                std::to_string(rs.mailbox_received) +
                                ",\"barrier_wait_s\":" +
                                obs::json_number(rs.barrier_wait_seconds) +
                                "}";
          metrics_->record_engine(static_cast<RankId>(r), global_min,
                                  std::move(payload));
        }
      }
    }
    // Safe point: every rank thread is parked in the barrier and the
    // mailboxes are drained, so the global state is a consistent cut.
    // Runs after the window's observability so the snapshot carries this
    // window's records (the restarted run's priming pass skips them).
    run_stats_.sync_windows = ckpt_windows_base_ + windows;
    if (checkpointing() && checkpoint_due(global_min, true)) {
      take_checkpoint();
    }
  };

  // Cross-rank events sent during setup() are sitting in mailboxes; they
  // must be in the vortices before the first horizon is computed or the
  // first window could run past them.
  for (auto& r : ranks_) drain_mailbox(r);
  compute_sync();
  --windows;  // the priming call is not a sync round
  priming = false;

  std::barrier after_send(static_cast<std::ptrdiff_t>(R));
  std::barrier<decltype(compute_sync)> after_drain(
      static_cast<std::ptrdiff_t>(R), compute_sync);

  // Window-batched exchange: every rank gets one staging buffer per
  // destination; sends inside a window are lock-free appends, flushed
  // with one lock per destination at the after_send barrier.
  for (auto& r : ranks_) r.outbox.resize(R);
  exchange_batching_ = true;

  // Barrier timing feeds both the profiler and the adaptive controller.
  const bool time_barriers = config_.profile_engine || adaptive;
  auto worker = [this, &sync, &after_send, &after_drain,
                 time_barriers](RankId me) {
    auto wait = [this, me, time_barriers](auto& barrier) {
      if (!time_barriers) {
        barrier.arrive_and_wait();
        return;
      }
      const auto t0 = std::chrono::steady_clock::now();
      // Checkpoints are written inside the barrier completion while every
      // rank is parked, and the watchdog is credited that wall time via
      // ckpt_pause_ns_.  Credit the barrier-wait profile the same way, so
      // barrier_wait_seconds measures synchronization, not snapshot I/O.
      const std::uint64_t ckpt0 =
          ckpt_pause_ns_.load(std::memory_order_relaxed);
      barrier.arrive_and_wait();
      double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      waited -= 1e-9 * static_cast<double>(
                           ckpt_pause_ns_.load(std::memory_order_relaxed) -
                           ckpt0);
      if (waited > 0) ranks_[me].barrier_wait_seconds += waited;
    };
    while (!sync.done) {
      rank_process_until(me, sync.horizon);
      flush_outbox(me);
      wait(after_send);
      drain_mailbox(ranks_[me]);
      wait(after_drain);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(R - 1);
  for (RankId r = 1; r < R; ++r) {
    threads.emplace_back(worker, r);
  }
  worker(0);
  for (auto& t : threads) t.join();
  exchange_batching_ = false;
  lax_active_ = false;
  rebalance_accounting_ = false;
  run_stats_.sync_windows = ckpt_windows_base_ + windows;
  if (!rebalance_error_.empty()) {
    // A half-applied migration leaves an inconsistent partition; the run
    // cannot continue.  (Never expected: the migrator only throws on
    // engine invariant violations.)
    throw SimulationError("rebalance: migration failed: " +
                          rebalance_error_);
  }
}

// ---------------------------------------------------------------------
// Checkpointing (writer lives in src/ckpt; cadence and watchdog
// suspension live here so serial and parallel runs trigger identically)
// ---------------------------------------------------------------------

void Simulation::set_checkpoint_writer(
    std::function<void(Simulation&)> writer) {
  ckpt_writer_ = std::move(writer);
}

// ---------------------------------------------------------------------
// Online rebalancing (the migrator lives in src/ckpt; the accounting,
// the decision cadence and the partition refresh live here)
// ---------------------------------------------------------------------

void Simulation::set_migrator(
    std::function<void(Simulation&, ComponentId, RankId)> migrator) {
  migrator_ = std::move(migrator);
}

void Simulation::maybe_rebalance(SimTime global_min) {
  // Runs inside the (noexcept) barrier completion, single-threaded, with
  // every mailbox drained — the same safe point checkpoints use.  Any
  // failure parks in rebalance_error_; run_parallel rethrows it.
  try {
    std::vector<std::uint64_t> rank_events(config_.num_ranks, 0);
    std::vector<ComponentLoad> loads(components_.size());
    for (std::size_t c = 0; c < components_.size(); ++c) {
      loads[c].comp = static_cast<ComponentId>(c);
      loads[c].rank = components_[c]->rank_;
      loads[c].events = comp_epoch_events_[c];
      rank_events[loads[c].rank] += loads[c].events;
    }
    const std::vector<MigrationDecision> moves = rebalance_ctl_->plan(loads);
    if (!moves.empty()) {
      const double before = RebalanceController::imbalance(rank_events);
      for (const MigrationDecision& m : moves) {
        migrator_(*this, m.comp, m.to);
        rank_events[m.from] -= comp_epoch_events_[m.comp];
        rank_events[m.to] += comp_epoch_events_[m.comp];
      }
      refresh_partition();
      const double after = RebalanceController::imbalance(rank_events);
      ++rebalances_;
      comps_migrated_ += moves.size();
      if (rebalance_count_stat_ != nullptr) {
        rebalance_count_stat_->add(1);
        rebalance_moved_stat_->add(moves.size());
        imb_before_stat_->add(before);
        imb_after_stat_->add(after);
      }
      if (tracer_ && config_.trace_engine) {
        // One span per move on the engine track, spanning the barrier's
        // sync point to the first horizon the new partition computes.
        const SimTime span_end = (global_min >= kTimeNever - lookahead_)
                                     ? global_min
                                     : global_min + lookahead_;
        for (const MigrationDecision& m : moves) {
          tracer_->record_migration(global_min, span_end, m.comp, m.from,
                                    m.to);
        }
      }
      if (config_.verbose) {
        std::cerr << "[sst] rebalance @" << global_min << "ps: moved "
                  << moves.size() << " component(s), imbalance " << before
                  << " -> " << after << "\n";
      }
    }
    // Each period is measured independently: reset the counters whether
    // or not anything moved.
    std::fill(comp_epoch_events_.begin(), comp_epoch_events_.end(), 0);
  } catch (const std::exception& e) {
    rebalance_error_ = e.what();
  }
}

bool Simulation::checkpoint_due(SimTime t, bool check_wall) {
  if (config_.checkpoint_period > 0) {
    const SimTime period = config_.checkpoint_period;
    if (ckpt_next_mark_ == kTimeNever) {
      // First event time seen this run arms the first period mark.  A
      // restarted run sees the same first event the uninterrupted run
      // saw right after its checkpoint, so both compute the same mark.
      ckpt_next_mark_ = (t / period + 1) * period;
    } else if (t >= ckpt_next_mark_) {
      ckpt_next_mark_ = (t / period + 1) * period;
      return true;
    }
  }
  if (check_wall && config_.checkpoint_wall > 0) {
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - ckpt_last_wall_).count() >=
        config_.checkpoint_wall) {
      return true;
    }
  }
  return false;
}

void Simulation::take_checkpoint() noexcept {
  // The count is bumped before capture so the snapshot includes its own
  // occurrence: a restarted run then continues the sequence instead of
  // recounting the checkpoint it resumed from.
  ++ckpt_taken_;
  if (ckpt_count_stat_ != nullptr) ckpt_count_stat_->add(1);
  ckpt_writing_.store(true, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    ckpt_writer_(*this);
  } catch (const std::exception& e) {
    std::cerr << "[sst] checkpoint write failed (run continues): " << e.what()
              << "\n";
  }
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  ckpt_write_seconds_ += 1e-9 * static_cast<double>(ns);
  ckpt_pause_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                           std::memory_order_relaxed);
  ckpt_writing_.store(false, std::memory_order_release);
  ckpt_last_wall_ = t1;
  if (ckpt_write_stat_ != nullptr) {
    ckpt_write_stat_->add(1e-9 * static_cast<double>(ns));
  }
  if (config_.verbose) {
    std::cerr << "[sst] checkpoint " << ckpt_taken_ << " written in "
              << (1e-9 * static_cast<double>(ns)) << "s\n";
  }
}

std::string Simulation::diagnostic_report(const std::string& reason) const {
  std::string out = reason + "\n";
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& rank = ranks_[r];
    out += "  rank " + std::to_string(r) + ": t=" + std::to_string(rank.now) +
           "ps, " + std::to_string(rank.vortex.size()) +
           " pending events, " + std::to_string(rank.events) + " processed\n";
  }
  std::vector<const Component*> blocked;
  for (const auto& c : components_) {
    if (c->is_primary_ && !c->said_ok_) blocked.push_back(c.get());
  }
  if (!blocked.empty()) {
    out += "  blocked primary components (" + std::to_string(blocked.size()) +
           "):\n";
    std::size_t shown = 0;
    for (const Component* c : blocked) {
      if (++shown > 16) {
        out += "    ... and " + std::to_string(blocked.size() - 16) +
               " more\n";
        break;
      }
      out += "    '" + c->name() + "' on rank " + std::to_string(c->rank_) +
             "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Observability (src/obs)
// ---------------------------------------------------------------------

/// Resolves the construction-time ids buffered in trace/metrics records
/// to component and port names at write time.
class Simulation::ObsResolver final : public obs::TraceResolver {
 public:
  explicit ObsResolver(const Simulation& sim) : sim_(sim) {}

  [[nodiscard]] ComponentId delivery_target(LinkId link) const override {
    const Link* l = sim_.links_[link].get();
    return l->peer_ != nullptr ? l->peer_->owner_ : l->owner_;
  }

  [[nodiscard]] std::string delivery_label(LinkId link) const override {
    const Link* l = sim_.links_[link].get();
    const Link* dst = l->peer_ != nullptr ? l->peer_ : l;
    return sim_.components_[dst->owner_]->name() + "." + dst->port_;
  }

  [[nodiscard]] std::string component_name(ComponentId comp) const override {
    return sim_.components_[comp]->name();
  }

  [[nodiscard]] std::size_t component_count() const override {
    return sim_.components_.size();
  }

 private:
  const Simulation& sim_;
};

void Simulation::setup_observability() {
  if (config_.trace || !config_.trace_path.empty()) {
    tracer_ = std::make_unique<obs::Tracer>(config_.num_ranks);
    tracer_->set_include_engine(config_.trace_engine);
  }
  if (config_.metrics || !config_.metrics_path.empty()) {
    if (config_.metrics_period == 0) {
      throw ConfigError("metrics_period must be >= 1ps");
    }
    if (config_.end_time == kTimeNever &&
        primary_count_.load(std::memory_order_acquire) == 0) {
      throw ConfigError(
          "metrics sampling requires an end_time or primary components "
          "(the sampling clock would otherwise keep the simulation alive "
          "forever)");
    }
    metrics_ = std::make_unique<obs::MetricsCollector>(config_.num_ranks);
    metrics_->set_include_engine(config_.profile_engine);
    // One sampling clock per rank that owns components.  Each handler
    // snapshots only its own rank's components, so parallel sampling is
    // race-free and the merged stream matches the serial one exactly.
    std::vector<bool> rank_used(config_.num_ranks, false);
    for (const auto& c : components_) rank_used[c->rank_] = true;
    for (RankId r = 0; r < config_.num_ranks; ++r) {
      if (!rank_used[r]) continue;
      get_clock(r, config_.metrics_period)
          ->add_handler(kInvalidComponent, [this, r](Cycle) {
            sample_metrics(r);
            return false;
          });
    }
  }
  if (config_.num_ranks > 1 && config_.sync_mode == SyncMode::kLax) {
    // The lax accuracy report: always present in lax runs (it is the
    // run's error bound, not a profiling detail).  stragglers counts the
    // late events that were corrected; max_skew_ps is the largest
    // correction actually applied, guaranteed < config lax_skew.
    lax_straggler_stat_ = stats_.create<Counter>("engine.lax", "stragglers");
    lax_skew_stat_ = stats_.create<Accumulator>("engine.lax", "max_skew_ps");
  }
  if (config_.profile_engine && config_.num_ranks > 1 &&
      config_.sync_mode == SyncMode::kAdaptive) {
    // One sample per sync epoch: the window the controller chose (ps).
    window_stat_ = stats_.create<Accumulator>("engine.sync", "window_ps");
  }
  if (config_.profile_engine && config_.num_ranks > 1) {
    // One sample per sync epoch that retired events: the per-rank
    // event-rate imbalance (max/mean) — the quantity the rebalance
    // controller thresholds on, observable without tracing.
    imbalance_stat_ =
        stats_.create<Accumulator>("engine.sync", "imbalance_ratio");
  }
  if (config_.profile_engine && config_.num_ranks > 1 && config_.rebalance) {
    rebalance_count_stat_ =
        stats_.create<Counter>("engine.rebalance", "migrations");
    rebalance_moved_stat_ =
        stats_.create<Counter>("engine.rebalance", "components_moved");
    imb_before_stat_ =
        stats_.create<Accumulator>("engine.rebalance", "imbalance_before");
    imb_after_stat_ =
        stats_.create<Accumulator>("engine.rebalance", "imbalance_after");
  }
  if (config_.profile_engine) {
    engine_stats_.resize(config_.num_ranks);
    for (RankId r = 0; r < config_.num_ranks; ++r) {
      const std::string comp = "engine.rank" + std::to_string(r);
      EngineStats& es = engine_stats_[r];
      es.events = stats_.create<Counter>(comp, "events_processed");
      es.mailbox = stats_.create<Counter>(comp, "mailbox_received");
      es.pool_allocs = stats_.create<Counter>(comp, "tick_pool_allocs");
      es.pool_recycles = stats_.create<Counter>(comp, "tick_pool_recycles");
      es.exchange_flushes =
          stats_.create<Counter>(comp, "exchange_flushes");
      es.vortex_depth = stats_.create<Accumulator>(comp, "vortex_depth");
      es.barrier_wait =
          stats_.create<Accumulator>(comp, "barrier_wait_seconds");
      es.events_per_sec = stats_.create<Accumulator>(comp, "events_per_sec");
    }
    if (config_.checkpoint_period > 0 || config_.checkpoint_wall > 0) {
      // Checkpoint pause/resume window: how often the run was paused to
      // snapshot, and for how long (wall time the watchdog was credited).
      ckpt_count_stat_ = stats_.create<Counter>("engine.ckpt", "checkpoints");
      ckpt_write_stat_ =
          stats_.create<Accumulator>("engine.ckpt", "write_seconds");
    }
  }
}

void Simulation::build_metrics_index() {
  metrics_stats_.assign(components_.size(), {});
  for (const auto& s : stats_.all()) {
    auto it = component_names_.find(s->component());
    if (it == component_names_.end()) continue;  // engine.rankN etc.
    metrics_stats_[it->second].push_back(s.get());
  }
}

void Simulation::sample_metrics(RankId rank) {
  const SimTime t = ranks_[rank].now;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    if (components_[c]->rank_ != rank) continue;
    const auto& list = metrics_stats_[c];
    if (list.empty()) continue;
    std::string payload = "{";
    bool first = true;
    for (const Statistic* s : list) {
      if (!first) payload += ",";
      first = false;
      payload += "\"" + obs::json_escape(s->name()) + "\":{";
      bool first_field = true;
      for (const auto& f : s->fields()) {
        if (!first_field) payload += ",";
        first_field = false;
        payload +=
            "\"" + obs::json_escape(f.name) + "\":" + obs::json_number(f.value);
      }
      payload += "}";
    }
    payload += "}";
    metrics_->record(rank, t, static_cast<ComponentId>(c),
                     std::move(payload));
  }
}

void Simulation::finalize_engine_stats(double wall_seconds) {
  // Clocks are keyed by (rank, period); fold each rank's tick-pool
  // traffic into its engine.rankN counters.
  std::vector<std::uint64_t> allocs(ranks_.size(), 0);
  std::vector<std::uint64_t> recycles(ranks_.size(), 0);
  for (const auto& [key, clock] : clocks_) {
    allocs[key.first] += clock->tick_allocs();
    recycles[key.first] += clock->tick_recycles();
  }
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    EngineStats& es = engine_stats_[r];
    es.events->add(ranks_[r].events);
    es.mailbox->add(ranks_[r].mailbox_received);
    es.pool_allocs->add(allocs[r]);
    es.pool_recycles->add(recycles[r]);
    es.exchange_flushes->add(ranks_[r].outbox_flushes);
    es.barrier_wait->add(ranks_[r].barrier_wait_seconds);
    if (wall_seconds > 0) {
      es.events_per_sec->add(static_cast<double>(ranks_[r].events) /
                             wall_seconds);
    }
  }
}

void Simulation::flush_observability(bool nothrow) {
  auto write_file = [&](const std::string& path, const char* what,
                        auto&& writer) {
    if (path.empty()) return;
    std::ofstream f(path, std::ios::binary);
    if (!f) {
      if (nothrow) {
        std::cerr << "[sst] cannot open " << what << " output '" << path
                  << "'\n";
        return;
      }
      throw SimulationError("cannot open " + std::string(what) +
                            " output '" + path + "'");
    }
    writer(f);
    if (!f && !nothrow) {
      throw SimulationError("error writing " + std::string(what) +
                            " output '" + path + "'");
    }
  };
  if (tracer_) {
    write_file(config_.trace_path, "trace",
               [this](std::ostream& os) { write_trace_json(os); });
  }
  if (metrics_) {
    write_file(config_.metrics_path, "metrics",
               [this](std::ostream& os) { write_metrics_jsonl(os); });
  }
}

void Simulation::trace_clock_dispatch(RankId rank, SimTime t,
                                      ComponentId comp, Cycle cycle) {
  tracer_->record_clock(rank, t, comp, cycle);
}

void Simulation::trace_marker(RankId rank, SimTime t, ComponentId comp,
                              std::uint64_t seq, const std::string& name,
                              const std::string& detail) {
  tracer_->record_marker(rank, t, comp, seq, name, detail);
}

void Simulation::write_trace_json(std::ostream& os) const {
  if (!tracer_) {
    throw ConfigError("tracing was not enabled (SimConfig::trace)");
  }
  ObsResolver resolver(*this);
  tracer_->write_json(os, resolver);
}

void Simulation::write_metrics_jsonl(std::ostream& os) const {
  if (!metrics_) {
    throw ConfigError("metrics were not enabled (SimConfig::metrics)");
  }
  ObsResolver resolver(*this);
  metrics_->write_jsonl(os, resolver);
}

void Simulation::finish_components() {
  for (auto& c : components_) c->finish();
  // Flag probable configuration mistakes: no events at all usually means
  // the model graph was wired but never started.
  if (config_.verbose) {
    std::uint64_t total = 0;
    for (const auto& r : ranks_) total += r.events;
    if (total == 0) {
      std::cerr << "[sst] warning: simulation processed zero events\n";
    }
  }
}

}  // namespace sst
