// Registration of the vm element library ("vm.Tlb",
// "vm.PageTableWalker") into the process-wide Factory, parameter docs
// included, plus the checkpoint event-registry entries for the vm protocol
// events.
#pragma once

#include "vm/page_table.h"
#include "vm/tlb.h"
#include "vm/vm_event.h"
#include "vm/walker.h"

namespace sst::vm {

/// Idempotent; call before building graphs that use vm.* components.
void register_library();

}  // namespace sst::vm
