#include "vm/tlb.h"

#include <algorithm>
#include <string>
#include <utility>

#include "ckpt/serializer.h"
#include "vm/page_table.h"

namespace sst::vm {

namespace {
[[nodiscard]] bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}
}  // namespace

Tlb::Tlb(Params& params) {
  enabled_ = params.find<bool>("enabled", true);
  const auto nlevels = params.find<std::uint32_t>("levels", 2);
  if (nlevels < 1 || nlevels > 4) {
    throw ConfigError("tlb '" + name() + "': levels must be 1..4");
  }
  // Per-level geometry defaults sketch a small L1 backed by a larger,
  // slower L2 (and beyond).
  static constexpr std::uint32_t kDefSets[] = {16, 128, 256, 256};
  static constexpr std::uint32_t kDefWays[] = {4, 8, 8, 8};
  static constexpr const char* kDefLat[] = {"300ps", "1ns", "2ns", "2ns"};
  for (std::uint32_t i = 1; i <= nlevels; ++i) {
    const std::string pfx = "l" + std::to_string(i) + "_";
    Level lvl;
    lvl.sets = params.find<std::uint32_t>(pfx + "sets", kDefSets[i - 1]);
    lvl.ways = params.find<std::uint32_t>(pfx + "ways", kDefWays[i - 1]);
    lvl.latency = params.find_period(pfx + "latency", kDefLat[i - 1]);
    if (!is_power_of_two(lvl.sets)) {
      throw ConfigError("tlb '" + name() + "': " + pfx +
                        "sets must be a power of 2");
    }
    if (lvl.ways == 0) {
      throw ConfigError("tlb '" + name() + "': " + pfx + "ways must be >= 1");
    }
    miss_latency_ += lvl.latency;
    levels_.push_back(lvl);
    entries_.emplace_back(
        static_cast<std::size_t>(lvl.sets) * lvl.ways, Entry{});
  }

  auto sizes = params.find_array<UnitAlgebra>("page_sizes");
  if (sizes.empty()) sizes = {UnitAlgebra("4KiB"), UnitAlgebra("2MiB"),
                              UnitAlgebra("1GiB")};
  for (const auto& sz : sizes) {
    const std::uint64_t bytes = sz.to_bytes();
    if (!is_power_of_two(bytes) || bytes < (1ULL << kPageShift)) {
      throw ConfigError("tlb '" + name() +
                        "': page_sizes entries must be powers of 2 >= 4KiB");
    }
    std::uint8_t bits = 0;
    for (std::uint64_t b = bytes; b > 1; b >>= 1) ++bits;
    probe_bits_.push_back(bits);
  }
  std::sort(probe_bits_.begin(), probe_bits_.end());
  probe_bits_.erase(std::unique(probe_bits_.begin(), probe_bits_.end()),
                    probe_bits_.end());

  cpu_link_ = configure_link(
      "cpu", [this](EventPtr ev) { handle_cpu(std::move(ev)); });
  mem_link_ = configure_link(
      "mem", [this](EventPtr ev) { handle_mem(std::move(ev)); });
  ptw_link_ = configure_link(
      "ptw", [this](EventPtr ev) { handle_ptw(std::move(ev)); },
      /*optional=*/!enabled_);
  inval_link_ = configure_link(
      "inval", [this](EventPtr ev) { handle_inval(std::move(ev)); },
      /*optional=*/true);

  for (std::uint32_t i = 1; i <= nlevels; ++i) {
    hits_.push_back(stat_counter("l" + std::to_string(i) + "_hits"));
    misses_.push_back(stat_counter("l" + std::to_string(i) + "_misses"));
  }
  walks_ = stat_counter("walks");
  walk_merges_ = stat_counter("walk_merges");
  bypassed_ = stat_counter("bypassed");
  shootdowns_ = stat_counter("shootdowns");
  inval_entries_ = stat_counter("inval_entries");
  walk_latency_ = stat_accumulator("walk_latency_ps");
}

Tlb::LookupResult Tlb::lookup(std::uint32_t asid, Addr vaddr) {
  LookupResult r;
  SimTime latency = 0;
  for (std::uint32_t li = 0; li < levels_.size(); ++li) {
    const Level& lvl = levels_[li];
    latency += lvl.latency;
    for (const std::uint8_t pb : probe_bits_) {
      const Addr vbase = vaddr & ~((Addr{1} << pb) - 1);
      const std::uint32_t set =
          static_cast<std::uint32_t>(vaddr >> pb) & (lvl.sets - 1);
      for (std::uint32_t w = 0; w < lvl.ways; ++w) {
        Entry& e = entries_[li][static_cast<std::size_t>(set) * lvl.ways + w];
        if (e.valid && e.page_bits == pb && e.asid == asid &&
            e.vbase == vbase) {
          e.lru = lru_clock_++;
          r.level = li + 1;
          r.latency = latency;
          r.pbase = e.pbase;
          r.vbase = e.vbase;
          // Refill the faster levels above the hit (inclusive hierarchy).
          if (li > 0) install(asid, e.vbase, e.pbase, pb, li);
          return r;
        }
      }
    }
  }
  r.latency = latency;  // full-miss lookup cost (== miss_latency_)
  return r;
}

void Tlb::install(std::uint32_t asid, Addr vbase, Addr pbase,
                  std::uint8_t page_bits, std::uint32_t up_to_level) {
  for (std::uint32_t li = 0; li < up_to_level && li < levels_.size(); ++li) {
    const Level& lvl = levels_[li];
    const std::uint32_t set =
        static_cast<std::uint32_t>(vbase >> page_bits) & (lvl.sets - 1);
    Entry* const base = &entries_[li][static_cast<std::size_t>(set) * lvl.ways];
    // Refresh a matching entry in place; else fill an invalid way; else
    // evict the least-recently-used way (deterministic true LRU).
    Entry* victim = nullptr;
    for (std::uint32_t w = 0; w < lvl.ways; ++w) {
      Entry& e = base[w];
      if (e.valid && e.page_bits == page_bits && e.asid == asid &&
          e.vbase == vbase) {
        victim = &e;
        break;
      }
    }
    if (victim == nullptr) {
      for (std::uint32_t w = 0; w < lvl.ways; ++w) {
        if (!base[w].valid) {
          victim = &base[w];
          break;
        }
      }
    }
    if (victim == nullptr) {
      victim = base;
      for (std::uint32_t w = 1; w < lvl.ways; ++w) {
        if (base[w].lru < victim->lru) victim = &base[w];
      }
    }
    victim->vbase = vbase;
    victim->pbase = pbase;
    victim->asid = asid;
    victim->page_bits = page_bits;
    victim->valid = true;
    victim->lru = lru_clock_++;
  }
}

void Tlb::forward(std::unique_ptr<mem::MemEvent> req, Addr vbase, Addr pbase,
                  SimTime extra_delay) {
  const Addr pa = pbase + (req->addr() - vbase);
  auto out = std::make_unique<mem::MemEvent>(req->cmd(), pa, req->size(),
                                             req->req_id());
  out->set_bus_src(req->bus_src());
  out->set_asid(req->asid());
  mem_link_->send(std::move(out), extra_delay);
}

void Tlb::handle_cpu(EventPtr ev) {
  auto req = event_cast<mem::MemEvent>(std::move(ev));
  if (!mem::is_request(req->cmd())) {
    throw SimulationError("tlb '" + name() + "': response on cpu port");
  }
  if (!enabled_) {
    bypassed_->add();
    mem_link_->send(std::move(req));
    return;
  }
  const std::uint32_t asid = req->asid();
  const Addr vaddr = req->addr();
  const LookupResult hit = lookup(asid, vaddr);
  if (hit.level > 0) {
    hits_[hit.level - 1]->add();
    // Levels probed before the hit count a miss each.
    for (std::uint32_t li = 0; li + 1 < hit.level; ++li) misses_[li]->add();
    forward(std::move(req), hit.vbase, hit.pbase, hit.latency);
    return;
  }
  for (auto* m : misses_) m->add();

  const std::pair<std::uint32_t, std::uint64_t> page{asid,
                                                     vaddr >> kPageShift};
  if (auto it = pending_by_page_.find(page); it != pending_by_page_.end()) {
    pending_.at(it->second).waiters.push_back(std::move(req));
    walk_merges_->add();
    return;
  }
  const std::uint64_t id = next_walk_id_++;
  PendingWalk& walk = pending_[id];
  walk.asid = asid;
  walk.vaddr = vaddr;
  walk.start = now();
  walk.waiters.push_back(std::move(req));
  pending_by_page_.emplace(page, id);
  walks_->add();
  ptw_link_->send(std::make_unique<WalkRequestEvent>(id, vaddr, asid),
                  miss_latency_);
}

void Tlb::handle_ptw(EventPtr ev) {
  auto resp = event_cast<WalkResponseEvent>(std::move(ev));
  auto it = pending_.find(resp->id());
  if (it == pending_.end()) {
    throw SimulationError("tlb '" + name() + "': walk response for unknown id");
  }
  PendingWalk walk = std::move(it->second);
  pending_.erase(it);
  pending_by_page_.erase({walk.asid, walk.vaddr >> kPageShift});

  install(walk.asid, resp->vbase(), resp->pbase(), resp->page_bits(),
          static_cast<std::uint32_t>(levels_.size()));
  walk_latency_->add(static_cast<double>(now() - walk.start));
  for (auto& w : walk.waiters) {
    forward(std::move(w), resp->vbase(), resp->pbase(), 0);
  }
}

void Tlb::handle_mem(EventPtr ev) {
  auto resp = event_cast<mem::MemEvent>(std::move(ev));
  if (!mem::is_response(resp->cmd())) {
    throw SimulationError("tlb '" + name() + "': request on mem port");
  }
  cpu_link_->send(std::move(resp));
}

void Tlb::handle_inval(EventPtr ev) {
  auto sd = event_cast<ShootdownEvent>(std::move(ev));
  shootdowns_->add();
  const Addr span = sd->full() ? 0 : Addr{1} << sd->page_bits();
  std::uint64_t zapped = 0;
  for (auto& level : entries_) {
    for (Entry& e : level) {
      if (!e.valid) continue;
      if (!sd->all_asids() && e.asid != sd->asid()) continue;
      if (!sd->full()) {
        const Addr esize = Addr{1} << e.page_bits;
        const bool overlaps =
            e.vbase < sd->vbase() + span && sd->vbase() < e.vbase + esize;
        if (!overlaps) continue;
      }
      e.valid = false;
      ++zapped;
    }
  }
  inval_entries_->add(zapped);
  trace_event("tlb.shootdown", "seq=" + std::to_string(sd->seq()) +
                                   " zapped=" + std::to_string(zapped));
  // Always ACK — re-delivered or retried shootdowns are idempotent and the
  // walker keeps retrying until every ACK lands.
  inval_link_->send(std::make_unique<ShootdownAckEvent>(sd->seq()));
}

void Tlb::Entry::ckpt_io(ckpt::Serializer& s) {
  s & vbase & pbase & asid & page_bits & valid & lru;
}

void Tlb::PendingWalk::ckpt_io(ckpt::Serializer& s) {
  s & asid & vaddr & start & waiters;
}

void Tlb::serialize_state(ckpt::Serializer& s) {
  s & entries_ & lru_clock_ & pending_ & pending_by_page_ & next_walk_id_;
}

}  // namespace sst::vm
