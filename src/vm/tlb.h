// Multi-level TLB: per-level sets/ways/latency with deterministic true-LRU
// replacement, multiple concurrent page sizes (each probe checks every
// allowed size), and miss handling that coalesces same-page misses into one
// page-table walk (the cache-MSHR idiom).
//
// The TLB sits between a requester (core) and the first cache level: every
// request arriving on "cpu" carries a virtual address, is translated, and
// leaves on "mem" with the physical address; responses pass back upstream
// untouched (requesters match on req_id).  Misses go out the "ptw" port as
// WalkRequestEvents; the walker answers with the full page mapping, which
// installs into every level.  Shootdowns arrive on the optional "inval"
// port and are always ACKed, even when redundant, so the walker's retry
// protocol converges under drop/dup/delay faults.
//
// Ports:
//   "cpu"   — upstream (virtual-address requests in, responses out)
//   "mem"   — downstream (physical-address requests out, responses in)
//   "ptw"   — page-table walker (WalkRequest out, WalkResponse in)
//   "inval" — shootdown broadcast in, ACK out (optional)
//
// Params (all defaulted; see vm_lib.cpp for the docs):
//   levels, l<i>_sets, l<i>_ways, l<i>_latency, page_sizes, enabled
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/component.h"
#include "mem/mem_event.h"
#include "vm/vm_event.h"

namespace sst::vm {

class Tlb final : public Component {
 public:
  explicit Tlb(Params& params);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::uint32_t num_levels() const {
    return static_cast<std::uint32_t>(levels_.size());
  }
  [[nodiscard]] std::uint32_t level_sets(std::uint32_t level) const {
    return levels_.at(level - 1).sets;
  }
  [[nodiscard]] std::uint32_t level_ways(std::uint32_t level) const {
    return levels_.at(level - 1).ways;
  }
  [[nodiscard]] std::uint64_t level_hits(std::uint32_t level) const {
    return hits_.at(level - 1)->count();
  }
  [[nodiscard]] std::uint64_t level_misses(std::uint32_t level) const {
    return misses_.at(level - 1)->count();
  }
  [[nodiscard]] std::uint64_t walks() const { return walks_->count(); }
  [[nodiscard]] std::uint64_t shootdowns() const {
    return shootdowns_->count();
  }
  [[nodiscard]] std::uint64_t invalidated_entries() const {
    return inval_entries_->count();
  }

  void serialize_state(ckpt::Serializer& s) override;

 private:
  struct Entry {
    Addr vbase = 0;
    Addr pbase = 0;
    std::uint32_t asid = 0;
    std::uint8_t page_bits = 0;
    bool valid = false;
    std::uint64_t lru = 0;

    void ckpt_io(ckpt::Serializer& s);
  };

  struct Level {
    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    SimTime latency = 0;
  };

  /// One outstanding page-table walk; same-page misses pile on as waiters.
  struct PendingWalk {
    std::uint32_t asid = 0;
    Addr vaddr = 0;
    SimTime start = 0;
    std::vector<std::unique_ptr<mem::MemEvent>> waiters;

    void ckpt_io(ckpt::Serializer& s);
  };

  void handle_cpu(EventPtr ev);
  void handle_mem(EventPtr ev);
  void handle_ptw(EventPtr ev);
  void handle_inval(EventPtr ev);

  /// (level, cumulative latency) of the hit, or level 0 on full miss.
  struct LookupResult {
    std::uint32_t level = 0;
    SimTime latency = 0;
    Addr pbase = 0;
    Addr vbase = 0;
  };
  [[nodiscard]] LookupResult lookup(std::uint32_t asid, Addr vaddr);
  void install(std::uint32_t asid, Addr vbase, Addr pbase,
               std::uint8_t page_bits, std::uint32_t up_to_level);
  /// Translates and forwards one request downstream.
  void forward(std::unique_ptr<mem::MemEvent> req, Addr vbase, Addr pbase,
               SimTime extra_delay);

  Link* cpu_link_;
  Link* mem_link_;
  Link* ptw_link_;
  Link* inval_link_;

  bool enabled_;
  std::vector<Level> levels_;
  std::vector<std::uint8_t> probe_bits_;  // allowed page sizes, ascending
  SimTime miss_latency_ = 0;              // sum of every level's latency

  // entries_[level][set * ways + way]
  std::vector<std::vector<Entry>> entries_;
  std::uint64_t lru_clock_ = 1;
  std::map<std::uint64_t, PendingWalk> pending_;  // walk id -> state
  // (asid, vaddr >> 12) -> walk id: coalesces same-page misses.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t>
      pending_by_page_;
  std::uint64_t next_walk_id_ = 1;

  std::vector<Counter*> hits_;    // per level
  std::vector<Counter*> misses_;  // per level
  Counter* walks_;
  Counter* walk_merges_;
  Counter* bypassed_;
  Counter* shootdowns_;
  Counter* inval_entries_;
  Accumulator* walk_latency_;
};

}  // namespace sst::vm
