#include "vm/walker.h"

#include <algorithm>
#include <string>
#include <utility>

#include "ckpt/serializer.h"

namespace sst::vm {

PageTableWalker::PageTableWalker(Params& params) {
  const auto num_tlbs = params.find<std::uint32_t>("num_tlbs", 1);
  if (num_tlbs == 0) {
    throw ConfigError("walker '" + name() + "': num_tlbs must be >= 1");
  }
  depth_ = params.find<std::uint32_t>("walk_depth", 4);
  if (depth_ < 1 || depth_ > 5) {
    throw ConfigError("walker '" + name() + "': walk_depth must be 1..5");
  }
  step_latency_ = params.find_period("step_latency", "500ps");
  wc_entries_ = params.find<std::uint32_t>("walk_cache_entries", 16);
  retry_timeout_ = params.find_time("retry_timeout", "2us");
  retry_backoff_ = params.find<double>("retry_backoff", 2.0);
  retry_max_ = params.find<std::uint32_t>("retry_max", 8);
  if (retry_timeout_ == 0) {
    throw ConfigError("walker '" + name() + "': retry_timeout must be > 0");
  }
  if (retry_backoff_ < 1.0) {
    throw ConfigError("walker '" + name() + "': retry_backoff must be >= 1");
  }
  storm_period_ = params.find_time("shootdown_period", "0ps");
  storm_span_ =
      params.find<UnitAlgebra>("shootdown_span", UnitAlgebra("64MiB"))
          .to_bytes();
  if (storm_period_ > 0 && storm_span_ < (Addr{1} << 21)) {
    throw ConfigError("walker '" + name() +
                      "': shootdown_span must be >= 2MiB");
  }

  PageTable::Config cfg;
  cfg.seed = params.find<std::uint64_t>("seed", 1);
  cfg.phys_bits = params.find<std::uint32_t>("phys_bits", 33);
  if (cfg.phys_bits < 21 || cfg.phys_bits > 52) {
    throw ConfigError("walker '" + name() + "': phys_bits must be 21..52");
  }
  cfg.pte_size = params.find<std::uint32_t>("pte_size", 8);
  if (cfg.pte_size == 0 || cfg.pte_size > 64) {
    throw ConfigError("walker '" + name() + "': pte_size must be 1..64");
  }
  auto sizes = params.find_array<UnitAlgebra>("page_sizes");
  if (sizes.empty()) sizes = {UnitAlgebra("4KiB"), UnitAlgebra("2MiB"),
                              UnitAlgebra("1GiB")};
  for (const auto& sz : sizes) {
    const std::uint64_t bytes = sz.to_bytes();
    if (bytes == (1ULL << 21)) cfg.allow_2m = true;
    if (bytes == (1ULL << 30)) cfg.allow_1g = true;
  }
  const std::string policy = params.find("huge_pages", "none");
  if (policy == "none") {
    cfg.policy = PageTable::HugePolicy::kNone;
  } else if (policy == "static") {
    cfg.policy = PageTable::HugePolicy::kStatic;
  } else if (policy == "promote") {
    cfg.policy = PageTable::HugePolicy::kPromote;
  } else {
    throw ConfigError("walker '" + name() + "': unknown huge_pages policy '" +
                      policy + "' (known: none, static, promote)");
  }
  cfg.huge_ratio = params.find<double>("huge_ratio", 0.25);
  cfg.giga_ratio = params.find<double>("giga_ratio", 0.0);
  cfg.promote_threshold =
      params.find<std::uint32_t>("promote_threshold", 64);
  if (cfg.promote_threshold == 0) {
    throw ConfigError("walker '" + name() +
                      "': promote_threshold must be >= 1");
  }
  pt_ = PageTable(cfg);

  for (std::uint32_t i = 0; i < num_tlbs; ++i) {
    tlb_links_.push_back(configure_link(
        "tlb" + std::to_string(i),
        [this, i](EventPtr ev) { handle_tlb(i, std::move(ev)); }));
    inval_links_.push_back(configure_link(
        "inval" + std::to_string(i),
        [this, i](EventPtr ev) { handle_inval(i, std::move(ev)); },
        /*optional=*/true));
  }
  mem_link_ = configure_link(
      "mem", [this](EventPtr ev) { handle_mem(std::move(ev)); });
  retry_link_ = configure_self_link(
      "retry", 1, [this](EventPtr ev) { handle_retry(std::move(ev)); });
  if (storm_period_ > 0) {
    register_clock(storm_period_, [this](Cycle c) { return storm_tick(c); });
  }

  walks_ = stat_counter("walks");
  pte_reads_ = stat_counter("pte_reads");
  wc_hits_ = stat_counter("walk_cache_hits");
  promotions_ = stat_counter("promotions");
  sd_sent_ = stat_counter("shootdowns_sent");
  sd_acked_ = stat_counter("shootdowns_acked");
  sd_retries_ = stat_counter("shootdown_retries");
  sd_failed_ = stat_counter("shootdowns_failed");
  storm_shootdowns_ = stat_counter("storm_shootdowns");
  walk_latency_ = stat_accumulator("walk_latency_ps");
}

void PageTableWalker::handle_tlb(std::uint32_t port, EventPtr ev) {
  auto req = event_cast<WalkRequestEvent>(std::move(ev));
  walks_->add();
  trace_event("walk.begin", "asid=" + std::to_string(req->asid()) +
                                " vaddr=" + std::to_string(req->vaddr()));

  const std::uint64_t id = next_walk_id_++;
  Walk& walk = walks_inflight_[id];
  walk.src_port = port;
  walk.tlb_id = req->id();
  walk.asid = req->asid();
  walk.vaddr = req->vaddr();
  walk.start = now();
  walk.mapping = pt_.resolve(walk.asid, walk.vaddr);
  walk.leaf_level = std::min(
      depth_, 1 + (walk.mapping.page_bits - kPageShift) / kRadixBits);

  // Walk-cache short-circuit: the lowest cached non-leaf step covers every
  // level above it, so the walk resumes one level below.
  std::uint32_t start_level = depth_;
  for (std::uint32_t lvl = walk.leaf_level + 1; lvl <= depth_; ++lvl) {
    WalkCacheKey key{walk.asid, lvl, walk.vaddr >> page_bits_at(lvl)};
    if (auto it = walk_cache_.find(key); it != walk_cache_.end()) {
      it->second = wc_clock_++;
      wc_hits_->add();
      start_level = lvl - 1;
      break;
    }
  }
  walk.level = start_level;
  issue_read(id, walk);
}

void PageTableWalker::issue_read(std::uint64_t walk_id, Walk& walk) {
  pte_reads_->add();
  ++walk.reads;
  mem_link_->send(
      std::make_unique<mem::MemEvent>(
          mem::MemCmd::kGetS, pt_.pte_addr(walk.asid, walk.level, walk.vaddr),
          pt_.config().pte_size, walk_id),
      step_latency_);
}

void PageTableWalker::handle_mem(EventPtr ev) {
  auto resp = event_cast<mem::MemEvent>(std::move(ev));
  if (!mem::is_response(resp->cmd())) {
    throw SimulationError("walker '" + name() + "': request on mem port");
  }
  auto it = walks_inflight_.find(resp->req_id());
  if (it == walks_inflight_.end()) {
    throw SimulationError("walker '" + name() +
                          "': PTE fill for unknown walk");
  }
  Walk& walk = it->second;
  if (walk.level > walk.leaf_level) {
    // A completed non-leaf step is exactly what the walk cache stores.
    walk_cache_insert(
        {walk.asid, walk.level, walk.vaddr >> page_bits_at(walk.level)});
    --walk.level;
    issue_read(it->first, walk);
    return;
  }
  complete_walk(it->first, walk);
  walks_inflight_.erase(it);
}

void PageTableWalker::complete_walk(std::uint64_t walk_id, Walk& walk) {
  (void)walk_id;
  walk_latency_->add(static_cast<double>(now() - walk.start));
  trace_event("walk.end",
              "asid=" + std::to_string(walk.asid) + " levels=" +
                  std::to_string(walk.reads) + " page_bits=" +
                  std::to_string(walk.mapping.page_bits));
  tlb_links_[walk.src_port]->send(std::make_unique<WalkResponseEvent>(
      walk.tlb_id, walk.mapping.vbase, walk.mapping.pbase,
      walk.mapping.page_bits, walk.reads));

  if (walk.mapping.page_bits == kPageShift) {
    if (const auto region = pt_.note_walk(walk.asid, walk.vaddr)) {
      promotions_->add();
      // The old 4KiB mappings (TLB entries and cached walk steps) are
      // stale the moment the region remaps huge.
      walk_cache_.clear();
      broadcast_shootdown(walk.asid, *region, 21, /*all_asids=*/false,
                          /*full=*/false);
    }
  }
}

void PageTableWalker::walk_cache_insert(const WalkCacheKey& key) {
  if (wc_entries_ == 0) return;
  walk_cache_[key] = wc_clock_++;
  if (walk_cache_.size() <= wc_entries_) return;
  auto victim = walk_cache_.begin();
  for (auto it = walk_cache_.begin(); it != walk_cache_.end(); ++it) {
    if (it->second < victim->second) victim = it;
  }
  walk_cache_.erase(victim);
}

void PageTableWalker::broadcast_shootdown(std::uint32_t asid, Addr vbase,
                                          std::uint8_t page_bits,
                                          bool all_asids, bool full) {
  Shootdown sd;
  sd.asid = asid;
  sd.vbase = vbase;
  sd.page_bits = page_bits;
  sd.all_asids = all_asids;
  sd.full = full;
  for (std::uint32_t i = 0; i < inval_links_.size(); ++i) {
    if (inval_links_[i]->connected()) sd.pending.insert(i);
  }
  if (sd.pending.empty()) return;  // no TLBs wired for invalidations

  const std::uint64_t seq = next_seq_++;
  sd_sent_->add();
  trace_event("shootdown.begin", "seq=" + std::to_string(seq));
  for (const std::uint32_t i : sd.pending) {
    inval_links_[i]->send(std::make_unique<ShootdownEvent>(
        seq, asid, vbase, page_bits, all_asids, full));
  }
  shootdowns_.emplace(seq, std::move(sd));
  arm_retry(seq, 0);
}

void PageTableWalker::arm_retry(std::uint64_t seq, std::uint32_t attempt) {
  double scale = 1.0;
  for (std::uint32_t i = 0; i < attempt; ++i) scale *= retry_backoff_;
  const double scaled = static_cast<double>(retry_timeout_) * scale;
  SimTime delay = scaled >= 9e18 ? static_cast<SimTime>(9e18)
                                 : static_cast<SimTime>(scaled);
  if (delay < 1) delay = 1;
  // Self-link latency is 1ps; the remainder rides as extra delay.
  retry_link_->send(std::make_unique<ShootdownTimerEvent>(seq, attempt),
                    delay - 1);
}

void PageTableWalker::handle_inval(std::uint32_t port, EventPtr ev) {
  auto ack = event_cast<ShootdownAckEvent>(std::move(ev));
  auto it = shootdowns_.find(ack->seq());
  if (it == shootdowns_.end()) return;  // duplicate/late ACK
  it->second.pending.erase(port);
  if (it->second.pending.empty()) {
    sd_acked_->add();
    trace_event("shootdown.end", "seq=" + std::to_string(ack->seq()));
    shootdowns_.erase(it);
  }
}

void PageTableWalker::handle_retry(EventPtr ev) {
  auto timer = event_cast<ShootdownTimerEvent>(std::move(ev));
  auto it = shootdowns_.find(timer->seq());
  if (it == shootdowns_.end()) return;                   // fully ACKed
  Shootdown& sd = it->second;
  if (sd.attempts != timer->attempt()) return;           // superseded timer
  if (sd.attempts >= retry_max_) {
    // Bounded retries: give up rather than retry (and block) forever.
    sd_failed_->add();
    shootdowns_.erase(it);
    return;
  }
  ++sd.attempts;
  sd_retries_->add();
  for (const std::uint32_t i : sd.pending) {
    inval_links_[i]->send(std::make_unique<ShootdownEvent>(
        timer->seq(), sd.asid, sd.vbase, sd.page_bits, sd.all_asids,
        sd.full));
  }
  arm_retry(timer->seq(), sd.attempts);
}

bool PageTableWalker::storm_tick(Cycle cycle) {
  (void)cycle;
  // OS unmap churn: sweep a rotating 2MiB window across the span,
  // invalidating it in every address space.
  const Addr region =
      (static_cast<Addr>(storm_next_++) << 21) % storm_span_;
  storm_shootdowns_->add();
  broadcast_shootdown(0, region, 21, /*all_asids=*/true, /*full=*/false);
  return false;
}

void PageTableWalker::Walk::ckpt_io(ckpt::Serializer& s) {
  s & src_port & tlb_id & asid & vaddr & level & leaf_level & reads &
      mapping.vbase & mapping.pbase & mapping.page_bits & start;
}

void PageTableWalker::WalkCacheKey::ckpt_io(ckpt::Serializer& s) {
  s & asid & level & prefix;
}

void PageTableWalker::Shootdown::ckpt_io(ckpt::Serializer& s) {
  s & asid & vbase & page_bits & all_asids & full & pending & attempts;
}

void PageTableWalker::serialize_state(ckpt::Serializer& s) {
  s & walks_inflight_ & next_walk_id_ & walk_cache_ & wc_clock_ & pt_ &
      shootdowns_ & next_seq_ & storm_next_;
}

}  // namespace sst::vm
