#include "vm/page_table.h"

#include "ckpt/serializer.h"

namespace sst::vm {

namespace {

/// Uniform [0, 1) from a hash value.
[[nodiscard]] double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Domain-separation tags so mappings, table placement, and policy draws
/// come from independent streams of the same seed.
constexpr std::uint64_t kTagMap = 0x6d617070ULL;    // "mapp"
constexpr std::uint64_t kTagTable = 0x7461626cULL;  // "tabl"
constexpr std::uint64_t kTagHuge = 0x68756765ULL;   // "huge"

}  // namespace

bool PageTable::statically_huge(std::uint32_t asid, Addr region,
                                std::uint32_t page_bits,
                                double ratio) const {
  if (ratio <= 0.0) return false;
  if (ratio >= 1.0) return true;
  const std::uint64_t h =
      vm_mix(cfg_.seed ^ kTagHuge,
             (static_cast<std::uint64_t>(asid) << 8) | page_bits, region);
  return to_unit(h) < ratio;
}

PageTable::Mapping PageTable::resolve(std::uint32_t asid, Addr vaddr) const {
  std::uint32_t bits = kPageShift;
  if (cfg_.policy == HugePolicy::kStatic) {
    if (cfg_.allow_1g &&
        statically_huge(asid, vaddr >> 30, 30, cfg_.giga_ratio)) {
      bits = 30;
    } else if (cfg_.allow_2m &&
               statically_huge(asid, vaddr >> 21, 21, cfg_.huge_ratio)) {
      bits = 21;
    }
  } else if (cfg_.policy == HugePolicy::kPromote) {
    if (cfg_.allow_2m && promoted_.contains({asid, vaddr >> 21})) bits = 21;
  }

  Mapping m;
  m.page_bits = static_cast<std::uint8_t>(bits);
  m.vbase = vaddr & ~((Addr{1} << bits) - 1);
  if (cfg_.phys_bits > bits) {
    const std::uint64_t frames = std::uint64_t{1} << (cfg_.phys_bits - bits);
    const std::uint64_t frame =
        vm_mix(cfg_.seed ^ kTagMap,
               (static_cast<std::uint64_t>(asid) << 8) | bits, m.vbase) &
        (frames - 1);
    m.pbase = static_cast<Addr>(frame) << bits;
  }
  return m;
}

Addr PageTable::pte_addr(std::uint32_t asid, std::uint32_t level,
                         Addr vaddr) const {
  // The table read at `level` is shared by every vaddr with the same index
  // prefix above it; its 4KiB frame is a hash of that prefix.
  const std::uint32_t prefix_shift = page_bits_at(level + 1);
  const std::uint64_t prefix = prefix_shift < 64 ? vaddr >> prefix_shift : 0;
  const std::uint64_t frames =
      std::uint64_t{1} << (cfg_.phys_bits - kPageShift);
  const std::uint64_t frame =
      vm_mix(cfg_.seed ^ kTagTable,
             (static_cast<std::uint64_t>(asid) << 8) | level, prefix) &
      (frames - 1);
  const std::uint64_t index =
      (vaddr >> page_bits_at(level)) & ((1U << kRadixBits) - 1);
  return (static_cast<Addr>(frame) << kPageShift) | (index * cfg_.pte_size);
}

std::optional<Addr> PageTable::note_walk(std::uint32_t asid, Addr vaddr) {
  if (cfg_.policy != HugePolicy::kPromote || !cfg_.allow_2m) {
    return std::nullopt;
  }
  const std::pair<std::uint32_t, std::uint64_t> region{asid, vaddr >> 21};
  if (promoted_.contains(region)) return std::nullopt;
  if (++counts_[region] < cfg_.promote_threshold) return std::nullopt;
  promoted_.insert(region);
  counts_.erase(region);
  return static_cast<Addr>(region.second) << 21;
}

void PageTable::ckpt_io(ckpt::Serializer& s) {
  // Config is reconstructed from params; only policy state is dynamic.
  s & counts_ & promoted_;
}

}  // namespace sst::vm
