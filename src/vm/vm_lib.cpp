#include "vm/vm_lib.h"

#include "ckpt/event_registry.h"
#include "ckpt/serializer.h"
#include "core/factory.h"

namespace sst::vm {

void WalkRequestEvent::ckpt_fields(ckpt::Serializer& s) {
  s & id_ & vaddr_ & asid_;
}

void WalkResponseEvent::ckpt_fields(ckpt::Serializer& s) {
  s & id_ & vbase_ & pbase_ & page_bits_ & levels_;
}

void ShootdownEvent::ckpt_fields(ckpt::Serializer& s) {
  s & seq_ & asid_ & vbase_ & page_bits_ & all_asids_ & full_;
}

void ShootdownAckEvent::ckpt_fields(ckpt::Serializer& s) { s & seq_; }

void ShootdownTimerEvent::ckpt_fields(ckpt::Serializer& s) {
  s & seq_ & attempt_;
}

namespace {

void register_ckpt_events() {
  auto& r = ckpt::EventRegistry::instance();
  r.register_type("vm.WalkReq",
                  [] { return std::make_unique<WalkRequestEvent>(0, 0, 0); });
  r.register_type("vm.WalkResp", [] {
    return std::make_unique<WalkResponseEvent>(0, 0, 0, 0, 0);
  });
  r.register_type("vm.Shootdown", [] {
    return std::make_unique<ShootdownEvent>(0, 0, 0, 0, false, false);
  });
  r.register_type("vm.ShootdownAck",
                  [] { return std::make_unique<ShootdownAckEvent>(0); });
  r.register_type("vm.ShootdownTimer", [] {
    return std::make_unique<ShootdownTimerEvent>(0, 0);
  });
}

}  // namespace

void register_library() {
  static const bool once = [] {
    Factory& f = Factory::instance();
    f.register_component(
        "vm.Tlb",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<Tlb>(name, p);
        });
    f.register_component(
        "vm.PageTableWalker",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<PageTableWalker>(name, p);
        });
    f.describe_params("vm.Tlb", {
        {"levels", "TLB hierarchy depth (1..4)", "2"},
        {"l1_sets", "level-1 sets (power of 2); l2_/l3_/l4_ likewise", "16"},
        {"l1_ways", "level-1 ways; l2_/l3_/l4_ likewise", "4"},
        {"l1_latency", "level-1 lookup latency; l2_/l3_/l4_ likewise",
         "300ps"},
        {"l2_sets", "level-2 sets (power of 2)", "128"},
        {"l2_ways", "level-2 ways", "8"},
        {"l2_latency", "level-2 lookup latency", "1ns"},
        {"page_sizes", "translated page sizes, e.g. \"4KiB,2MiB,1GiB\"",
         "4KiB,2MiB,1GiB"},
        {"enabled", "false = pass addresses through untranslated", "true"},
    });
    f.describe_params("vm.PageTableWalker", {
        {"num_tlbs", "TLBs served (ports tlb0../inval0..)", "1"},
        {"walk_depth", "radix-walk levels per cold walk (1..5)", "4"},
        {"step_latency", "walker pipeline latency per PTE step", "500ps"},
        {"walk_cache_entries",
         "MMU walk-cache entries short-circuiting upper levels (0 = off)",
         "16"},
        {"pte_size", "bytes read per page-table entry", "8"},
        {"phys_bits", "modeled physical address width (21..52)", "33"},
        {"seed", "page-table layout seed", "1"},
        {"page_sizes", "page sizes the OS may map, e.g. \"4KiB,2MiB\"",
         "4KiB,2MiB,1GiB"},
        {"huge_pages", "policy: none | static | promote", "none"},
        {"huge_ratio", "static: fraction of 2MiB regions mapped huge",
         "0.25"},
        {"giga_ratio", "static: fraction of 1GiB regions mapped giant", "0"},
        {"promote_threshold",
         "promote: 4KiB walks in a 2MiB region before promotion", "64"},
        {"retry_timeout", "shootdown ACK timeout before re-broadcast", "2us"},
        {"retry_backoff", "shootdown retry backoff multiplier", "2.0"},
        {"retry_max", "shootdown retries before giving up", "8"},
        {"shootdown_period",
         "period of the shootdown storm generator (0 = off)", "0ps"},
        {"shootdown_span",
         "virtual span the storm sweeps 2MiB-wise", "64MiB"},
    });
    register_ckpt_events();
    return true;
  }();
  (void)once;
}

}  // namespace sst::vm
