// OS-lite page-table model: a deterministic, storage-free description of
// every address space's translation, plus the huge-page policy.
//
// Real page-table contents are never materialized.  A mapping is a pure
// function of (seed, asid, page) — the same idiom the workload kernels use
// for address streams — so translation is reproducible across ranks,
// checkpoints, and migrations without shipping gigabytes of PTEs.  What
// *is* dynamic (and therefore serialized) is the promotion state: per-2MiB
// -region walk counters and the set of regions promoted to huge pages.
//
// Page sizes follow the x86-64 radix shape: 4KiB leaves at level 1, 2MiB
// at level 2, 1GiB at level 3, with 9 index bits per level.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "core/types.h"
#include "mem/mem_event.h"

namespace sst::ckpt {
class Serializer;
}

namespace sst::vm {

using Addr = mem::Addr;

/// Index bits per radix level (x86-64 shape: 512-entry tables).
inline constexpr std::uint32_t kRadixBits = 9;
inline constexpr std::uint32_t kPageShift = 12;  // 4KiB base pages

/// Bits of address one PTE at `level` translates: level 1 -> 12 (4KiB),
/// level 2 -> 21 (2MiB), level 3 -> 30 (1GiB), ...
[[nodiscard]] constexpr std::uint32_t page_bits_at(std::uint32_t level) {
  return kPageShift + kRadixBits * (level - 1);
}

class PageTable {
 public:
  enum class HugePolicy : std::uint8_t {
    kNone,     // every mapping is a 4KiB page
    kStatic,   // a deterministic fraction of regions is huge from the start
    kPromote,  // regions promote to 2MiB after promote_threshold 4KiB walks
  };

  struct Config {
    std::uint64_t seed = 1;
    std::uint32_t phys_bits = 33;      // modeled physical address width
    std::uint32_t pte_size = 8;        // bytes per page-table entry
    bool allow_2m = false;
    bool allow_1g = false;
    HugePolicy policy = HugePolicy::kNone;
    double huge_ratio = 0.25;          // static: fraction of 2MiB regions
    double giga_ratio = 0.0;           // static: fraction of 1GiB regions
    std::uint32_t promote_threshold = 64;
  };

  struct Mapping {
    Addr vbase = 0;
    Addr pbase = 0;
    std::uint8_t page_bits = kPageShift;
  };

  PageTable() = default;
  explicit PageTable(Config cfg) : cfg_(cfg) {}

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// The mapping covering `vaddr` in address space `asid` under the current
  /// policy/promotion state.  Pure given the promotion state.
  [[nodiscard]] Mapping resolve(std::uint32_t asid, Addr vaddr) const;

  /// Physical address of the PTE read at `level` of a walk for `vaddr`
  /// (level walk_depth is the root, level 1 the 4KiB leaf).  Adjacent
  /// virtual addresses share tables, so walker traffic has real spatial
  /// locality in the caches below.
  [[nodiscard]] Addr pte_addr(std::uint32_t asid, std::uint32_t level,
                              Addr vaddr) const;

  /// Promotion bookkeeping: records one completed walk that resolved to a
  /// 4KiB page.  Returns the 2MiB region base newly promoted by this walk
  /// (the caller owes the TLBs a shootdown), or nullopt.
  std::optional<Addr> note_walk(std::uint32_t asid, Addr vaddr);

  [[nodiscard]] std::size_t promoted_regions() const {
    return promoted_.size();
  }

  void ckpt_io(ckpt::Serializer& s);

 private:
  [[nodiscard]] bool statically_huge(std::uint32_t asid, Addr region,
                                     std::uint32_t page_bits,
                                     double ratio) const;

  Config cfg_;
  // (asid, vaddr >> 21) -> completed 4KiB walks in the region.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> counts_;
  std::set<std::pair<std::uint32_t, std::uint64_t>> promoted_;
};

/// splitmix64 finalizer: the deterministic hash behind every synthetic
/// mapping and table placement.
[[nodiscard]] constexpr std::uint64_t vm_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] constexpr std::uint64_t vm_mix(std::uint64_t a, std::uint64_t b,
                                             std::uint64_t c) {
  return vm_mix64(a ^ vm_mix64(b ^ vm_mix64(c)));
}

}  // namespace sst::vm
