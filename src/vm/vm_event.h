// Events of the virtual-memory protocol (TLB <-> page-table walker), plus
// the TLB-shootdown broadcast/ACK pair.
//
// Every type here is clonable (so drop/dup/delay link faults can be
// injected on vm links) and checkpoint-serializable (so snapshots taken
// mid-walk or mid-shootdown restore bit-exactly).  ckpt_fields live in
// vm_lib.cpp next to the registry entries.
#pragma once

#include <cstdint>

#include "core/event.h"
#include "mem/mem_event.h"

namespace sst::vm {

using Addr = mem::Addr;

/// TLB -> walker: translate `vaddr` for address space `asid`.  `id` is the
/// TLB's walk identifier; the response echoes it.
class WalkRequestEvent final : public Event {
 public:
  WalkRequestEvent(std::uint64_t id, Addr vaddr, std::uint32_t asid)
      : id_(id), vaddr_(vaddr), asid_(asid) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] Addr vaddr() const { return vaddr_; }
  [[nodiscard]] std::uint32_t asid() const { return asid_; }

  [[nodiscard]] EventPtr clone() const override {
    return std::make_unique<WalkRequestEvent>(id_, vaddr_, asid_);
  }
  [[nodiscard]] const char* ckpt_type() const override {
    return "vm.WalkReq";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  std::uint64_t id_;
  Addr vaddr_;
  std::uint32_t asid_;
};

/// Walker -> TLB: the page containing the requested vaddr.  Carries the
/// full mapping (base + size) so the TLB installs one entry per page, not
/// per reference, and `levels` — how many PTE reads the walk actually
/// issued (after walk-cache short-circuiting) — for accounting.
class WalkResponseEvent final : public Event {
 public:
  WalkResponseEvent(std::uint64_t id, Addr vbase, Addr pbase,
                    std::uint8_t page_bits, std::uint8_t levels)
      : id_(id), vbase_(vbase), pbase_(pbase), page_bits_(page_bits),
        levels_(levels) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] Addr vbase() const { return vbase_; }
  [[nodiscard]] Addr pbase() const { return pbase_; }
  [[nodiscard]] std::uint8_t page_bits() const { return page_bits_; }
  [[nodiscard]] std::uint8_t levels() const { return levels_; }

  [[nodiscard]] EventPtr clone() const override {
    return std::make_unique<WalkResponseEvent>(id_, vbase_, pbase_,
                                               page_bits_, levels_);
  }
  [[nodiscard]] const char* ckpt_type() const override {
    return "vm.WalkResp";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  std::uint64_t id_;
  Addr vbase_;
  Addr pbase_;
  std::uint8_t page_bits_;
  std::uint8_t levels_;
};

/// Walker -> TLB broadcast: invalidate every entry overlapping
/// [vbase, vbase + 2^page_bits) (or everything, when `full`).  `seq` keys
/// the ACK; re-delivery (fault duplication or a retried broadcast whose
/// ACK was lost) is idempotent — the TLB always re-ACKs.
class ShootdownEvent final : public Event {
 public:
  ShootdownEvent(std::uint64_t seq, std::uint32_t asid, Addr vbase,
                 std::uint8_t page_bits, bool all_asids, bool full)
      : seq_(seq), asid_(asid), vbase_(vbase), page_bits_(page_bits),
        all_asids_(all_asids), full_(full) {}

  [[nodiscard]] std::uint64_t seq() const { return seq_; }
  [[nodiscard]] std::uint32_t asid() const { return asid_; }
  [[nodiscard]] Addr vbase() const { return vbase_; }
  [[nodiscard]] std::uint8_t page_bits() const { return page_bits_; }
  [[nodiscard]] bool all_asids() const { return all_asids_; }
  [[nodiscard]] bool full() const { return full_; }

  [[nodiscard]] EventPtr clone() const override {
    return std::make_unique<ShootdownEvent>(seq_, asid_, vbase_, page_bits_,
                                            all_asids_, full_);
  }
  [[nodiscard]] const char* ckpt_type() const override {
    return "vm.Shootdown";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  std::uint64_t seq_;
  std::uint32_t asid_;
  Addr vbase_;
  std::uint8_t page_bits_;
  bool all_asids_;
  bool full_;
};

/// TLB -> walker: shootdown `seq` applied.
class ShootdownAckEvent final : public Event {
 public:
  explicit ShootdownAckEvent(std::uint64_t seq) : seq_(seq) {}

  [[nodiscard]] std::uint64_t seq() const { return seq_; }

  [[nodiscard]] EventPtr clone() const override {
    return std::make_unique<ShootdownAckEvent>(seq_);
  }
  [[nodiscard]] const char* ckpt_type() const override {
    return "vm.ShootdownAck";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  std::uint64_t seq_;
};

/// Walker self-link timer arming a shootdown retry; carries the attempt
/// that armed it so a timer from a superseded attempt is ignored
/// (net::NetEndpoint's retry idiom).
class ShootdownTimerEvent final : public Event {
 public:
  ShootdownTimerEvent(std::uint64_t seq, std::uint32_t attempt)
      : seq_(seq), attempt_(attempt) {}

  [[nodiscard]] std::uint64_t seq() const { return seq_; }
  [[nodiscard]] std::uint32_t attempt() const { return attempt_; }

  [[nodiscard]] EventPtr clone() const override {
    return std::make_unique<ShootdownTimerEvent>(seq_, attempt_);
  }
  [[nodiscard]] const char* ckpt_type() const override {
    return "vm.ShootdownTimer";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  std::uint64_t seq_;
  std::uint32_t attempt_;
};

}  // namespace sst::vm
