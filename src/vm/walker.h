// Hardware page-table walker: serves WalkRequests from one or more TLBs by
// performing a radix walk of SDL-configurable depth whose PTE reads are
// *real* memory requests issued down the existing cache/DRAM path — walker
// traffic competes for the same MSHRs, bus slots, and DRAM banks as demand
// traffic, which is the whole point of modeling it.
//
// An MMU walk cache (page-walk cache) short-circuits the upper levels:
// the lowest cached non-leaf step resumes the walk just below it, so warm
// walks touch memory once instead of `walk_depth` times.
//
// The walker owns the OS-lite PageTable (page-size policy + huge-page
// promotion).  When a region promotes, every connected TLB receives a
// shootdown broadcast, retried with exponential backoff until ACKed
// (bounded attempts — under heavy fault injection delivery can fail, it
// never deadlocks).  A periodic shootdown storm generator (`shootdown_
// period`) models OS unmap churn for fault-scenario studies.
//
// Ports:
//   "tlb<i>"   — per-TLB walk protocol (WalkRequest in, WalkResponse out)
//   "inval<i>" — per-TLB shootdown broadcast out, ACK in (optional)
//   "mem"      — PTE reads into the memory hierarchy
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/component.h"
#include "mem/mem_event.h"
#include "vm/page_table.h"
#include "vm/vm_event.h"

namespace sst::vm {

class PageTableWalker final : public Component {
 public:
  explicit PageTableWalker(Params& params);

  [[nodiscard]] std::uint32_t walk_depth() const { return depth_; }
  [[nodiscard]] std::uint64_t walks() const { return walks_->count(); }
  [[nodiscard]] std::uint64_t pte_reads() const { return pte_reads_->count(); }
  [[nodiscard]] std::uint64_t walk_cache_hits() const {
    return wc_hits_->count();
  }
  [[nodiscard]] std::uint64_t promotions() const {
    return promotions_->count();
  }
  [[nodiscard]] std::uint64_t shootdowns_sent() const {
    return sd_sent_->count();
  }
  [[nodiscard]] std::uint64_t shootdowns_acked() const {
    return sd_acked_->count();
  }
  [[nodiscard]] std::uint64_t shootdown_retries() const {
    return sd_retries_->count();
  }
  [[nodiscard]] std::uint64_t shootdowns_failed() const {
    return sd_failed_->count();
  }
  [[nodiscard]] const PageTable& page_table() const { return pt_; }

  void serialize_state(ckpt::Serializer& s) override;

 private:
  /// One in-flight walk; the mem req_id IS the walk id.
  struct Walk {
    std::uint32_t src_port = 0;
    std::uint64_t tlb_id = 0;     // requesting TLB's walk identifier
    std::uint32_t asid = 0;
    Addr vaddr = 0;
    std::uint32_t level = 0;      // level of the outstanding PTE read
    std::uint32_t leaf_level = 1;
    std::uint8_t reads = 0;
    PageTable::Mapping mapping;
    SimTime start = 0;

    void ckpt_io(ckpt::Serializer& s);
  };

  struct WalkCacheKey {
    std::uint32_t asid = 0;
    std::uint32_t level = 0;
    std::uint64_t prefix = 0;

    bool operator<(const WalkCacheKey& o) const {
      if (asid != o.asid) return asid < o.asid;
      if (level != o.level) return level < o.level;
      return prefix < o.prefix;
    }
    void ckpt_io(ckpt::Serializer& s);
  };

  /// One outstanding shootdown broadcast (ports still owing an ACK).
  struct Shootdown {
    std::uint32_t asid = 0;
    Addr vbase = 0;
    std::uint8_t page_bits = 0;
    bool all_asids = false;
    bool full = false;
    std::set<std::uint32_t> pending;  // inval port indices
    std::uint32_t attempts = 0;

    void ckpt_io(ckpt::Serializer& s);
  };

  void handle_tlb(std::uint32_t port, EventPtr ev);
  void handle_inval(std::uint32_t port, EventPtr ev);
  void handle_mem(EventPtr ev);
  void handle_retry(EventPtr ev);
  bool storm_tick(Cycle cycle);

  void issue_read(std::uint64_t walk_id, Walk& walk);
  void complete_walk(std::uint64_t walk_id, Walk& walk);
  void walk_cache_insert(const WalkCacheKey& key);
  void broadcast_shootdown(std::uint32_t asid, Addr vbase,
                           std::uint8_t page_bits, bool all_asids, bool full);
  void arm_retry(std::uint64_t seq, std::uint32_t attempt);

  std::vector<Link*> tlb_links_;
  std::vector<Link*> inval_links_;
  Link* mem_link_;
  Link* retry_link_;

  std::uint32_t depth_;
  SimTime step_latency_;
  std::uint32_t wc_entries_;
  SimTime retry_timeout_;
  double retry_backoff_;
  std::uint32_t retry_max_;
  SimTime storm_period_ = 0;
  Addr storm_span_ = 0;

  PageTable pt_;
  std::map<std::uint64_t, Walk> walks_inflight_;
  std::uint64_t next_walk_id_ = 1;
  std::map<WalkCacheKey, std::uint64_t> walk_cache_;  // key -> lru stamp
  std::uint64_t wc_clock_ = 1;
  std::map<std::uint64_t, Shootdown> shootdowns_;  // seq -> state
  std::uint64_t next_seq_ = 1;
  std::uint64_t storm_next_ = 0;

  Counter* walks_;
  Counter* pte_reads_;
  Counter* wc_hits_;
  Counter* promotions_;
  Counter* sd_sent_;
  Counter* sd_acked_;
  Counter* sd_retries_;
  Counter* sd_failed_;
  Counter* storm_shootdowns_;
  Accumulator* walk_latency_;
};

}  // namespace sst::vm
