// Small JSON formatting helpers shared by the observability writers
// (src/obs) and the statistics JSON output (src/core/statistics.cpp).
//
// These are deliberately tiny and deterministic: the golden-run corpus
// (tests/golden) and the 1-vs-N-rank trace determinism tests hash these
// writers' output byte-for-byte, so formatting must depend only on the
// values themselves — no locales, no pointer ordering, no platform
// printf quirks beyond IEEE-754 text conversion.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace sst::obs {

/// Escapes a string for inclusion inside a JSON string literal.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number (12 significant digits, matching the
/// CSV writer's precision).  Non-finite values have no JSON number
/// representation and become null.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace sst::obs
