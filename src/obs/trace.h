// Event tracer: records what the engine did — event deliveries, clock
// handler dispatches, model-defined markers, and (optionally) the
// parallel engine's sync windows — and writes the result as Chrome
// trace-event JSON (load it at chrome://tracing or https://ui.perfetto.dev).
//
// Determinism contract: the default trace contains only *model-level*
// activity, keyed by simulated time and by ids that are assigned during
// construction (component ids, link ids, per-source sequence numbers).
// Records are buffered per rank without locks and merged into one total
// order at write time, so a trace taken at R ranks is byte-identical to
// the serial trace of the same model (for runs that terminate by
// end_time or by draining the event queue; primary-based termination is
// window-quantized, exactly like the engine itself).  Engine spans (sync
// windows) are inherently rank-dependent and are only emitted when
// include_engine is set.
//
// This layer depends only on core/types.h so that sst_core can link it
// without a dependency cycle; ids are resolved to names at write time
// through the TraceResolver interface the Simulation implements.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.h"

namespace sst::ckpt {
class Serializer;
}  // namespace sst::ckpt

namespace sst::obs {

/// One buffered trace record; resolved to names only at write time.
struct TraceRecord {
  /// Sort/emit order of kinds at equal time (clock ticks dispatch before
  /// same-time event deliveries in the engine, markers fire inside both).
  enum class Kind : std::uint8_t { kClock = 0, kDelivery = 1, kMarker = 2 };

  SimTime time = 0;
  Kind kind = Kind::kDelivery;
  std::uint32_t id = 0;   // link id (delivery) or component id (clock/marker)
  std::uint64_t seq = 0;  // per-link send seq / clock cycle / marker seq
  std::string name;       // marker name (empty for engine record kinds)
  std::string detail;     // optional marker payload

  void ckpt_io(ckpt::Serializer& s);
};

/// One conservative-PDES synchronization window (engine track).
struct SyncWindowRecord {
  SimTime start = 0;
  SimTime end = 0;
  std::uint64_t index = 0;

  void ckpt_io(ckpt::Serializer& s);
};

/// One component migration performed by the online rebalancer (engine
/// track): the span covers the sync window the move took effect in.
struct MigrationRecord {
  SimTime start = 0;
  SimTime end = 0;
  ComponentId comp = 0;
  RankId from = 0;
  RankId to = 0;

  void ckpt_io(ckpt::Serializer& s);
};

/// Resolves construction-time ids to stable names when the trace is
/// written.  Implemented by Simulation.
class TraceResolver {
 public:
  virtual ~TraceResolver() = default;

  /// Component that *received* an event sent on the given link endpoint.
  [[nodiscard]] virtual ComponentId delivery_target(LinkId link) const = 0;
  /// Receiving port name of the given sending endpoint ("l1.cpu").
  [[nodiscard]] virtual std::string delivery_label(LinkId link) const = 0;
  [[nodiscard]] virtual std::string component_name(ComponentId comp) const = 0;
  [[nodiscard]] virtual std::size_t component_count() const = 0;
};

class Tracer {
 public:
  explicit Tracer(unsigned num_ranks);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Record methods are called on the owning rank's thread only (the
  // per-rank buffers are unsynchronized by design); record_window is
  // called from the sync-barrier completion callback, which runs while
  // every rank thread is parked.
  void record_delivery(RankId rank, SimTime t, LinkId link,
                       std::uint64_t seq);
  void record_clock(RankId rank, SimTime t, ComponentId comp, Cycle cycle);
  void record_marker(RankId rank, SimTime t, ComponentId comp,
                     std::uint64_t seq, std::string name, std::string detail);
  void record_window(SimTime start, SimTime end, std::uint64_t index);
  void record_migration(SimTime start, SimTime end, ComponentId comp,
                        RankId from, RankId to);

  /// Include rank-dependent engine spans in the output (breaks the
  /// R-rank == serial byte-identity, which is why it is opt-in).
  void set_include_engine(bool on) { include_engine_ = on; }
  [[nodiscard]] bool include_engine() const { return include_engine_; }

  [[nodiscard]] std::size_t record_count() const;
  [[nodiscard]] std::size_t window_count() const { return windows_.size(); }
  [[nodiscard]] std::size_t migration_count() const {
    return migrations_.size();
  }

  /// Merges the per-rank buffers into the deterministic total order
  /// (time, kind, id, seq) and writes Chrome trace-event JSON.
  void write_json(std::ostream& os, const TraceResolver& resolver) const;

  /// Checkpoint hook: (un)packs the buffered records so a restarted run
  /// emits a trace identical to the uninterrupted one.
  void ckpt_io(ckpt::Serializer& s);

 private:
  std::vector<std::vector<TraceRecord>> per_rank_;
  std::vector<SyncWindowRecord> windows_;
  std::vector<MigrationRecord> migrations_;
  bool include_engine_ = false;
};

}  // namespace sst::obs
