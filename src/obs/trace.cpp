#include "obs/trace.h"

#include <algorithm>
#include <ostream>

#include "ckpt/serializer.h"
#include "obs/json_util.h"

namespace sst::obs {

void TraceRecord::ckpt_io(ckpt::Serializer& s) {
  s & time & kind & id & seq & name & detail;
}

void SyncWindowRecord::ckpt_io(ckpt::Serializer& s) {
  s & start & end & index;
}

void MigrationRecord::ckpt_io(ckpt::Serializer& s) {
  s & start & end & comp & from & to;
}

void Tracer::ckpt_io(ckpt::Serializer& s) {
  s & per_rank_ & windows_ & migrations_;
}

Tracer::Tracer(unsigned num_ranks) : per_rank_(num_ranks) {}

void Tracer::record_delivery(RankId rank, SimTime t, LinkId link,
                             std::uint64_t seq) {
  per_rank_[rank].push_back(
      {t, TraceRecord::Kind::kDelivery, link, seq, {}, {}});
}

void Tracer::record_clock(RankId rank, SimTime t, ComponentId comp,
                          Cycle cycle) {
  per_rank_[rank].push_back({t, TraceRecord::Kind::kClock, comp, cycle,
                             {}, {}});
}

void Tracer::record_marker(RankId rank, SimTime t, ComponentId comp,
                           std::uint64_t seq, std::string name,
                           std::string detail) {
  per_rank_[rank].push_back({t, TraceRecord::Kind::kMarker, comp, seq,
                             std::move(name), std::move(detail)});
}

void Tracer::record_window(SimTime start, SimTime end, std::uint64_t index) {
  windows_.push_back({start, end, index});
}

void Tracer::record_migration(SimTime start, SimTime end, ComponentId comp,
                              RankId from, RankId to) {
  migrations_.push_back({start, end, comp, from, to});
}

std::size_t Tracer::record_count() const {
  std::size_t n = 0;
  for (const auto& buf : per_rank_) n += buf.size();
  return n;
}

namespace {

/// The deterministic total order.  Every record is unique under this key
/// (deliveries: link id + per-link send seq; clocks: component + cycle;
/// markers: component + per-component seq), so the merged order does not
/// depend on how components were spread over ranks.
bool record_less(const TraceRecord& a, const TraceRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.id != b.id) return a.id < b.id;
  return a.seq < b.seq;
}

}  // namespace

void Tracer::write_json(std::ostream& os,
                        const TraceResolver& resolver) const {
  std::vector<TraceRecord> merged;
  merged.reserve(record_count());
  for (const auto& buf : per_rank_)
    merged.insert(merged.end(), buf.begin(), buf.end());
  std::stable_sort(merged.begin(), merged.end(), record_less);

  // Timestamps are integer picoseconds (the engine's native unit) rather
  // than the trace-event default of fractional microseconds: integers keep
  // the output exactly reproducible, and viewers only use ts ordinally.
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"model\"}}";
  const std::size_t ncomp = resolver.component_count();
  for (std::size_t c = 0; c < ncomp; ++c) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << c
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(resolver.component_name(static_cast<ComponentId>(c)))
       << "\"}}";
  }
  if (include_engine_) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"engine\"}}";
    if (!migrations_.empty()) {
      sep();
      os << "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"rebalance\"}}";
    }
  }

  for (const auto& r : merged) {
    sep();
    switch (r.kind) {
      case TraceRecord::Kind::kClock:
        os << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << r.id << ",\"ts\":"
           << r.time << ",\"s\":\"t\",\"cat\":\"clock\",\"name\":\"tick\","
              "\"args\":{\"cycle\":"
           << r.seq << "}}";
        break;
      case TraceRecord::Kind::kDelivery:
        os << "{\"ph\":\"i\",\"pid\":0,\"tid\":"
           << resolver.delivery_target(r.id) << ",\"ts\":" << r.time
           << ",\"s\":\"t\",\"cat\":\"delivery\",\"name\":\""
           << json_escape(resolver.delivery_label(r.id))
           << "\",\"args\":{\"link\":" << r.id << ",\"seq\":" << r.seq
           << "}}";
        break;
      case TraceRecord::Kind::kMarker:
        os << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << r.id << ",\"ts\":"
           << r.time << ",\"s\":\"t\",\"cat\":\"marker\",\"name\":\""
           << json_escape(r.name) << "\",\"args\":{\"seq\":" << r.seq;
        if (!r.detail.empty())
          os << ",\"detail\":\"" << json_escape(r.detail) << "\"";
        os << "}}";
        break;
    }
  }

  if (include_engine_) {
    for (const auto& w : windows_) {
      sep();
      os << "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":" << w.start
         << ",\"dur\":" << (w.end - w.start)
         << ",\"cat\":\"engine\",\"name\":\"sync_window\","
            "\"args\":{\"index\":"
         << w.index << "}}";
    }
    for (const auto& m : migrations_) {
      sep();
      os << "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":" << m.start
         << ",\"dur\":" << (m.end - m.start)
         << ",\"cat\":\"engine\",\"name\":\""
         << json_escape(resolver.component_name(m.comp))
         << "\",\"args\":{\"component\":" << m.comp << ",\"from\":" << m.from
         << ",\"to\":" << m.to << "}}";
    }
  }

  os << "\n]}\n";
}

}  // namespace sst::obs
