// Engine self-profiler output: a periodic stream of metrics snapshots,
// one JSON object per line (JSONL), suitable both for plotting a run's
// progress over simulated time and for machine-diffing two runs.
//
// Model snapshots are sampled by per-rank engine clocks: each rank's
// sampling handler reads only the statistics of components that live on
// that rank, so sampling is race-free in parallel runs and — because a
// snapshot line carries only (sim time, component, rendered stats) — the
// merged stream is byte-identical whether the model ran on 1 rank or N.
// Engine gauges (events/sec, TimeVortex depth, mailbox traffic, barrier
// wait) are inherently per-rank and rank-count-dependent, so those lines
// are only emitted when include_engine is set (--profile-engine).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.h"
#include "obs/trace.h"  // TraceResolver

namespace sst::obs {

class MetricsCollector {
 public:
  explicit MetricsCollector(unsigned num_ranks);

  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  /// Records one model snapshot: `payload` is a rendered JSON object of
  /// the component's statistic fields.  Called on the owning rank's
  /// thread only.
  void record(RankId rank, SimTime t, ComponentId comp, std::string payload);

  /// Records one engine snapshot for a rank (called from sync-safe
  /// points, where all rank threads are parked).
  void record_engine(RankId rank, SimTime t, std::string payload);

  void set_include_engine(bool on) { include_engine_ = on; }
  [[nodiscard]] bool include_engine() const { return include_engine_; }

  [[nodiscard]] std::size_t sample_count() const;

  /// Merges per-rank buffers sorted by (time, component) and writes one
  /// JSON object per line.
  void write_jsonl(std::ostream& os, const TraceResolver& resolver) const;

  /// Checkpoint hook: (un)packs the buffered snapshots so a restarted
  /// run's metrics stream matches the uninterrupted one.
  void ckpt_io(ckpt::Serializer& s);

 private:
  struct ModelSample {
    SimTime time = 0;
    ComponentId comp = 0;
    std::string payload;

    void ckpt_io(ckpt::Serializer& s);
  };
  struct EngineSample {
    SimTime time = 0;
    RankId rank = 0;
    std::string payload;

    void ckpt_io(ckpt::Serializer& s);
  };

  std::vector<std::vector<ModelSample>> per_rank_;
  std::vector<EngineSample> engine_;
  bool include_engine_ = false;
};

}  // namespace sst::obs
