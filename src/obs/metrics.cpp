#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

#include "ckpt/serializer.h"
#include "obs/json_util.h"

namespace sst::obs {

void MetricsCollector::ModelSample::ckpt_io(ckpt::Serializer& s) {
  s & time & comp & payload;
}

void MetricsCollector::EngineSample::ckpt_io(ckpt::Serializer& s) {
  s & time & rank & payload;
}

void MetricsCollector::ckpt_io(ckpt::Serializer& s) {
  s & per_rank_ & engine_;
}

MetricsCollector::MetricsCollector(unsigned num_ranks)
    : per_rank_(num_ranks) {}

void MetricsCollector::record(RankId rank, SimTime t, ComponentId comp,
                              std::string payload) {
  per_rank_[rank].push_back({t, comp, std::move(payload)});
}

void MetricsCollector::record_engine(RankId rank, SimTime t,
                                     std::string payload) {
  engine_.push_back({t, rank, std::move(payload)});
}

std::size_t MetricsCollector::sample_count() const {
  std::size_t n = 0;
  for (const auto& buf : per_rank_) n += buf.size();
  return n;
}

void MetricsCollector::write_jsonl(std::ostream& os,
                                   const TraceResolver& resolver) const {
  std::vector<ModelSample> merged;
  merged.reserve(sample_count());
  for (const auto& buf : per_rank_)
    merged.insert(merged.end(), buf.begin(), buf.end());
  // (time, component) is unique: each component is sampled at most once
  // per period tick, by exactly one rank's sampling clock.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ModelSample& a, const ModelSample& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.comp < b.comp;
                   });

  std::vector<EngineSample> eng = engine_;
  std::stable_sort(eng.begin(), eng.end(),
                   [](const EngineSample& a, const EngineSample& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.rank < b.rank;
                   });

  // Interleave so the stream stays time-ordered overall; model lines
  // precede engine lines at equal timestamps.
  std::size_t ei = 0;
  auto flush_engine_until = [&](SimTime t) {
    if (!include_engine_) return;
    while (ei < eng.size() && eng[ei].time < t) {
      os << "{\"t\":" << eng[ei].time << ",\"rank\":" << eng[ei].rank
         << ",\"engine\":" << eng[ei].payload << "}\n";
      ++ei;
    }
  };
  for (const auto& s : merged) {
    flush_engine_until(s.time);
    os << "{\"t\":" << s.time << ",\"component\":\""
       << json_escape(resolver.component_name(s.comp))
       << "\",\"stats\":" << s.payload << "}\n";
  }
  flush_engine_until(kTimeNever);
}

}  // namespace sst::obs
