// Bidirectional binary serializer for checkpoint/restart.
//
// One Serializer class handles both directions (SST's serialize_order
// idiom): in pack mode `s & field` appends the field's bytes to the
// stream, in unpack mode the same statement reads them back.  State
// capture and restore therefore share a single function per object, so
// the two directions cannot drift apart.
//
// Supported out of the box: arithmetic types, enums, bool,
// std::string, vector/deque/set/map/pair/optional, RNG engines,
// UnitAlgebra, Params, and polymorphic events (via the event registry,
// see event_registry.h).  Any struct can opt in by providing a
// `void ckpt_io(ckpt::Serializer&)` member that serializes its fields.
//
// The format is raw little-endian host bytes: checkpoints are restored
// on the machine (architecture) that wrote them, which is the
// crash/preemption-recovery use case; portability across endiannesses
// is explicitly out of scope (see DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/event.h"
#include "core/params.h"
#include "core/rng.h"
#include "core/types.h"
#include "core/unit_algebra.h"

namespace sst::ckpt {

/// Raised on any checkpoint failure: truncated/corrupt stream, version
/// or topology mismatch, unreadable file.  sstsim maps it to exit 5.
class CheckpointError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

class Serializer;

namespace detail {
// Implemented in event_registry.cpp: (un)packs one polymorphic event —
// type tag, engine fields, payload.  `write` requires a registered
// (checkpoint-serializable) event type.
void write_event(Serializer& s, const Event& ev);
[[nodiscard]] EventPtr read_event(Serializer& s);
}  // namespace detail

class Serializer {
 public:
  enum class Mode { kPack, kUnpack };

  explicit Serializer(Mode mode) : mode_(mode) {}

  /// Unpacking view over an existing byte stream.
  explicit Serializer(std::vector<std::byte> data)
      : mode_(Mode::kUnpack), buf_(std::move(data)) {}

  [[nodiscard]] bool packing() const { return mode_ == Mode::kPack; }

  [[nodiscard]] std::vector<std::byte>& buffer() { return buf_; }
  [[nodiscard]] const std::vector<std::byte>& buffer() const { return buf_; }

  /// True when every byte of an unpack stream has been consumed.
  [[nodiscard]] bool exhausted() const { return cursor_ >= buf_.size(); }
  [[nodiscard]] std::size_t cursor() const { return cursor_; }

  /// Raw byte transfer; everything else is built on this.
  void raw(void* data, std::size_t n) {
    if (packing()) {
      const auto* bytes = static_cast<const std::byte*>(data);
      buf_.insert(buf_.end(), bytes, bytes + n);
    } else {
      if (cursor_ + n > buf_.size()) {
        throw CheckpointError("checkpoint stream truncated (wanted " +
                              std::to_string(n) + " bytes at offset " +
                              std::to_string(cursor_) + " of " +
                              std::to_string(buf_.size()) + ")");
      }
      std::memcpy(data, buf_.data() + cursor_, n);
      cursor_ += n;
    }
  }

  // --- scalars -------------------------------------------------------

  template <typename T>
    requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
  Serializer& operator&(T& v) {
    raw(&v, sizeof v);
    return *this;
  }

  // --- structs providing void ckpt_io(Serializer&) -------------------

  template <typename T>
    requires requires(T& t, Serializer& s) { t.ckpt_io(s); }
  Serializer& operator&(T& v) {
    v.ckpt_io(*this);
    return *this;
  }

  // --- strings -------------------------------------------------------

  Serializer& operator&(std::string& v) {
    std::uint64_t n = v.size();
    (*this) & n;
    if (!packing()) v.resize(check_count(n, 1));
    if (n > 0) raw(v.data(), static_cast<std::size_t>(n));
    return *this;
  }

  // --- containers ----------------------------------------------------

  template <typename T>
  Serializer& operator&(std::vector<T>& v) {
    std::uint64_t n = v.size();
    (*this) & n;
    if (!packing()) {
      v.clear();
      v.resize(check_count(n, min_element_bytes<T>()));
    }
    for (auto& e : v) (*this) & e;
    return *this;
  }

  Serializer& operator&(std::vector<bool>& v) {
    std::uint64_t n = v.size();
    (*this) & n;
    if (!packing()) v.resize(check_count(n, 1));
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::uint8_t b = packing() ? (v[i] ? 1 : 0) : 0;
      (*this) & b;
      if (!packing()) v[i] = (b != 0);
    }
    return *this;
  }

  template <typename T>
  Serializer& operator&(std::deque<T>& v) {
    std::uint64_t n = v.size();
    (*this) & n;
    if (!packing()) {
      v.clear();
      v.resize(check_count(n, min_element_bytes<T>()));
    }
    for (auto& e : v) (*this) & e;
    return *this;
  }

  template <typename A, typename B>
  Serializer& operator&(std::pair<A, B>& v) {
    (*this) & v.first;
    (*this) & v.second;
    return *this;
  }

  template <typename T, typename Cmp>
  Serializer& operator&(std::set<T, Cmp>& v) {
    std::uint64_t n = v.size();
    (*this) & n;
    if (packing()) {
      for (const T& e : v) {
        T copy = e;  // set elements are const in place
        (*this) & copy;
      }
    } else {
      v.clear();
      check_count(n, min_element_bytes<T>());
      for (std::uint64_t i = 0; i < n; ++i) {
        T e{};
        (*this) & e;
        v.insert(std::move(e));
      }
    }
    return *this;
  }

  template <typename K, typename V, typename Cmp>
  Serializer& operator&(std::map<K, V, Cmp>& v) {
    std::uint64_t n = v.size();
    (*this) & n;
    if (packing()) {
      for (auto& [k, val] : v) {
        K key = k;
        (*this) & key;
        (*this) & val;
      }
    } else {
      v.clear();
      check_count(n, min_element_bytes<K>());
      for (std::uint64_t i = 0; i < n; ++i) {
        K key{};
        (*this) & key;
        V val{};
        (*this) & val;
        v.emplace(std::move(key), std::move(val));
      }
    }
    return *this;
  }

  template <typename T>
  Serializer& operator&(std::optional<T>& v) {
    std::uint8_t present = v.has_value() ? 1 : 0;
    (*this) & present;
    if (present != 0) {
      if (!packing() && !v.has_value()) v.emplace();
      (*this) & *v;
    } else if (!packing()) {
      v.reset();
    }
    return *this;
  }

  // --- polymorphic events (nullable) ---------------------------------

  template <typename T>
    requires std::derived_from<T, Event>
  Serializer& operator&(std::unique_ptr<T>& p) {
    std::uint8_t present = p != nullptr ? 1 : 0;
    (*this) & present;
    if (packing()) {
      if (present != 0) detail::write_event(*this, *p);
    } else {
      if (present == 0) {
        p.reset();
        return *this;
      }
      EventPtr ev = detail::read_event(*this);
      if constexpr (std::is_same_v<T, Event>) {
        p = std::move(ev);
      } else {
        T* typed = dynamic_cast<T*>(ev.get());
        if (typed == nullptr) {
          throw CheckpointError(
              "checkpoint stream holds an event of an unexpected type");
        }
        ev.release();
        p.reset(typed);
      }
    }
    return *this;
  }

  // --- framework value types -----------------------------------------

  Serializer& operator&(rng::XorShift128Plus& gen) {
    auto st = gen.state();
    (*this) & st.s0;
    (*this) & st.s1;
    if (!packing()) gen.set_state(st);
    return *this;
  }

  Serializer& operator&(rng::Pcg32& gen) {
    auto st = gen.state();
    (*this) & st.state;
    (*this) & st.inc;
    if (!packing()) gen.set_state(st);
    return *this;
  }

  Serializer& operator&(UnitAlgebra& ua) {
    double value = ua.value();
    Units units = ua.units();
    (*this) & value;
    for (auto& e : units.exp) (*this) & e;
    if (!packing()) ua = UnitAlgebra(value, units);
    return *this;
  }

  Serializer& operator&(Params& params) {
    if (packing()) {
      std::vector<std::string> keys = params.keys();
      std::uint64_t n = keys.size();
      (*this) & n;
      for (auto& k : keys) {
        std::string value = params.raw(k).value_or("");
        (*this) & k;
        (*this) & value;
      }
    } else {
      std::uint64_t n = 0;
      (*this) & n;
      params = Params{};
      check_count(n, 16);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string key;
        std::string value;
        (*this) & key;
        (*this) & value;
        params.set(std::move(key), std::move(value));
      }
    }
    return *this;
  }

 private:
  /// Guards container sizes read from a corrupt stream: a count whose
  /// minimal encoding would exceed the remaining bytes is rejected
  /// instead of driving a multi-gigabyte allocation.
  std::size_t check_count(std::uint64_t n, std::size_t min_bytes_each) {
    const std::uint64_t remaining = buf_.size() - cursor_;
    if (min_bytes_each > 0 && n > remaining / min_bytes_each) {
      throw CheckpointError("checkpoint stream corrupt: container count " +
                            std::to_string(n) + " exceeds remaining " +
                            std::to_string(remaining) + " bytes");
    }
    return static_cast<std::size_t>(n);
  }

  template <typename T>
  static constexpr std::size_t min_element_bytes() {
    if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>)
      return sizeof(T);
    else
      return 1;
  }

  Mode mode_;
  std::vector<std::byte> buf_;
  std::size_t cursor_ = 0;
};

}  // namespace sst::ckpt
