// Checkpoint event registry: maps stable event type tags to factories so
// pending events can be reconstructed on restart.
//
// Every event type that can be in flight at a checkpoint registers a
// factory under its ckpt_type() tag; element libraries do this inside
// their register_library() call (next to component factory
// registration), so linking a library makes its events checkpointable.
// The registry then writes events as
//
//   tag | delivery_time | priority | link_id | order | payload
//
// where payload is the subclass's ckpt_fields().  The delivery handler
// is intentionally NOT serialized: it is a pointer into the rebuilt
// link table and is recomputed from link_id on restore.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ckpt/serializer.h"
#include "core/event.h"

namespace sst::ckpt {

class EventRegistry {
 public:
  using Factory = std::function<EventPtr()>;

  /// Process-wide registry (registered from register_library() calls).
  static EventRegistry& instance();

  /// Registers a factory under `tag`.  Re-registering the same tag is
  /// idempotent (library registration helpers run under a once-guard,
  /// but tests may call them repeatedly).
  void register_type(const std::string& tag, Factory factory);

  [[nodiscard]] bool known(const std::string& tag) const;
  [[nodiscard]] std::vector<std::string> registered_tags() const;

  /// Packs one event (tag + engine fields + payload).  Throws
  /// CheckpointError when the event type is not registered.
  void write(Serializer& s, const Event& ev) const;

  /// Unpacks one event.  The handler field is left null; the checkpoint
  /// engine recomputes it from link_id.  Throws CheckpointError on an
  /// unknown tag.
  [[nodiscard]] EventPtr read(Serializer& s) const;

 private:
  EventRegistry();

  std::map<std::string, Factory> factories_;
};

}  // namespace sst::ckpt
