// Component migration: moves one component between ranks at a sync
// barrier, reusing the checkpoint Serializer for the state transfer.
//
// A migration packs the component's dynamic state (the same bytes a
// checkpoint would carry: said_ok, trace sequence, RNG stream,
// Component::serialize_state) plus its pending TimeVortex events into a
// Serializer blob, unpacks it back onto the component, rewrites the rank
// field and re-inserts the events into the target rank's vortex.  Link
// objects never move — only their cached endpoint-rank fields change,
// which Simulation::refresh_partition recomputes after a rebalance pass.
//
// The pack/unpack round trip is deliberate, not an implementation quirk:
// it proves at migration time that the component's full state survives
// serialization, so a checkpoint taken after the move restores
// byte-identically.  It also means migration shares the checkpoint
// contract: every pending event type must be registered in the
// EventRegistry (ckpt_type()), or the migration fails with a
// CheckpointError naming the offender.
//
// Clock handlers move tick-exactly: at a sync barrier every armed clock
// of period p — on any rank, in every sync mode — has pending cycle
// ceil(H/p) for the shared horizon H, so handlers can be re-homed onto
// the target rank's clock of the same period without skipping or
// repeating a tick.  A violated cycle invariant is an engine bug and
// throws SimulationError.
#pragma once

#include "core/types.h"

namespace sst {
class Simulation;
}  // namespace sst

namespace sst::ckpt {

/// The migration mechanism behind Simulation's online rebalancer.  A
/// friend of the core classes for the same reason CheckpointEngine is:
/// event queues, clock phases and rank fields are engine state, not
/// model API.
class Migrator {
 public:
  /// Moves component `comp` to rank `to`.  Must be called at a sync
  /// barrier safe point: single-threaded, mailboxes drained, outboxes
  /// flushed.  A no-op when the component already lives on `to`.  The
  /// caller is responsible for running Simulation::refresh_partition()
  /// after a batch of moves (link rank fields are stale until then).
  /// Throws CheckpointError when a pending event's type is not
  /// registered for serialization, SimulationError on engine invariant
  /// violations.
  static void migrate(Simulation& sim, ComponentId comp, RankId to);
};

/// Installs Migrator::migrate as `sim`'s migration callback
/// (Simulation::set_migrator).  ConfigGraph::build calls this
/// automatically when rebalancing is enabled; embedding APIs that build
/// Simulations directly must call it themselves before run().
void install_migrator(Simulation& sim);

}  // namespace sst::ckpt
