// Checkpoint/restart subsystem: crash-consistent snapshots of a running
// simulation with bit-exact resume.
//
// A checkpoint is (a) the SDL configuration graph that built the model,
// embedded as JSON, and (b) a binary state blob capturing everything that
// is not determined by rebuilding that graph: pending events, link
// sequence numbers and queues, clock phases and surviving handlers, RNG
// streams, statistics values, fault-model state, observability buffers,
// and per-component model state (Component::serialize_state).
//
// Restore is a *rebuild + overlay*: the restarting process re-executes
// construction and initialization from the embedded graph (which is
// deterministic), then the state blob overlays every dynamic field.  The
// restored run is byte-identical to the uninterrupted run — same stats,
// same trace, same metrics — at any rank count equal to the one that
// wrote the snapshot.
//
// Files are written crash-consistently (temp file + fsync + atomic
// rename + directory fsync) with rotating last-K retention; the header
// carries a version and an FNV-1a checksum so a truncated or corrupt
// snapshot is detected at load, and loading falls back to the newest
// intact sibling.  See DESIGN.md for the on-disk format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/serializer.h"
#include "core/types.h"

namespace sst {
class Clock;
class Simulation;
}  // namespace sst

namespace sst::ckpt {

/// On-disk format version; bumped on any incompatible layout change.
/// v2: per-component rank (online rebalancing moves components, so the
/// partition is dynamic state) + rebalance bookkeeping counters.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// One decoded checkpoint: header metadata + payload sections.
struct CheckpointData {
  std::uint64_t seq = 0;      // monotonic snapshot number within a run
  SimTime sim_time = 0;       // simulated time at the snapshot cut
  std::string graph_json;     // the SDL ConfigGraph that built the model
  std::vector<std::byte> state;  // dynamic-state blob (CheckpointEngine)
};

/// Captures and overlays the dynamic state of a Simulation.  A friend of
/// the core classes: the engine-side fields (event queues, clock phases,
/// link sequences) are checkpoint concerns, not model API, so they stay
/// private to core and are reached from here.
class CheckpointEngine {
 public:
  /// Serializes the full dynamic state of `sim` (which must be at a safe
  /// point: between events, or inside the sync-window barrier).  Throws
  /// CheckpointError when a pending event's type is not registered for
  /// checkpointing.
  [[nodiscard]] static std::vector<std::byte> capture(Simulation& sim);

  /// Overlays a captured state blob onto a freshly initialized rebuild
  /// of the same configuration graph.  Throws CheckpointError on any
  /// mismatch (rank count, topology, stream corruption).
  static void restore(Simulation& sim, std::vector<std::byte> state);

  /// Largest per-rank simulated time (snapshot metadata).
  [[nodiscard]] static SimTime sim_time(const Simulation& sim);

 private:
  /// Recomputes a restored event's handler pointer from its source link.
  static void fix_handler(Simulation& sim, Event& ev);
  /// Reorders a rebuilt clock's handler list to the checkpointed order,
  /// dropping handlers that had unregistered before the snapshot.
  static void reorder_clock_handlers(Clock& clock,
                                     const std::vector<ComponentId>& order);
};

/// File name of snapshot `seq` inside a checkpoint directory.
[[nodiscard]] std::string checkpoint_file_name(std::uint64_t seq);

/// Writes `data` into `dir` (created on demand) crash-consistently:
/// the bytes go to a temp file, are fsync'ed, and are atomically renamed
/// to checkpoint_file_name(data.seq); then all but the newest `keep`
/// snapshots in `dir` are removed.  Throws CheckpointError on I/O errors.
void write_checkpoint_file(const std::string& dir, const CheckpointData& data,
                           unsigned keep);

/// Reads and validates one checkpoint file.  Throws CheckpointError when
/// the file is unreadable, not a checkpoint, truncated, checksum-corrupt,
/// or of an unsupported version.
[[nodiscard]] CheckpointData read_checkpoint_file(const std::string& path);

/// Restart entry point: `path` is either a checkpoint file or a
/// checkpoint directory.  A directory loads its newest intact snapshot;
/// a corrupt/truncated file falls back to the newest intact sibling in
/// its directory (with a diagnostic on stderr naming what was rejected
/// and why).  Throws CheckpointError when no intact snapshot exists.
/// On success `*loaded_path` (when non-null) receives the file used.
[[nodiscard]] CheckpointData load_checkpoint(const std::string& path,
                                             std::string* loaded_path =
                                                 nullptr);

/// Installs the checkpoint writer on `sim`: at every due cadence point
/// the engine captures the state blob and writes it (with the given
/// graph JSON) into sim.config().checkpoint_dir, numbering snapshots
/// from `start_seq` + 1.  Pass the seq of the snapshot a run was
/// restored from so the resumed run continues the numbering.
void install_writer(Simulation& sim, std::string graph_json,
                    std::uint64_t start_seq = 0);

}  // namespace sst::ckpt
