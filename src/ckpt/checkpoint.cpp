#include "ckpt/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <utility>

#include "core/clock.h"
#include "core/component.h"
#include "core/link.h"
#include "core/simulation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sst::ckpt {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// State capture
// ---------------------------------------------------------------------

SimTime CheckpointEngine::sim_time(const Simulation& sim) {
  SimTime t = 0;
  for (const auto& r : sim.ranks_) t = std::max(t, r.now);
  return t;
}

namespace {

/// Clock tick events are skipped at capture: their schedule is an
/// engine invariant (next tick = floor(now/period)+1 cycles) and they
/// hold a pointer into their Clock, so restore re-arms them instead.
[[nodiscard]] bool is_clock_tick(const Event& ev) {
  return (ev.link_id() & Event::kClockSourceBase) != 0;
}

/// Stable capture order for event sets whose in-memory order is either a
/// heap layout or thread-interleaving-dependent (mailboxes): the engine's
/// deterministic total order.  Behaviourally redundant (the vortex pops
/// in this order and mailbox drains sort), but it makes the checkpoint
/// bytes themselves reproducible.
[[nodiscard]] std::vector<const Event*> sorted_events(
    const std::vector<EventPtr>& events, bool skip_clock_ticks) {
  std::vector<const Event*> out;
  out.reserve(events.size());
  for (const auto& ev : events) {
    if (skip_clock_ticks && is_clock_tick(*ev)) continue;
    out.push_back(ev.get());
  }
  std::sort(out.begin(), out.end(), [](const Event* a, const Event* b) {
    return EventOrder{}(*a, *b);
  });
  return out;
}

}  // namespace

std::vector<std::byte> CheckpointEngine::capture(Simulation& sim) {
  Serializer s(Serializer::Mode::kPack);

  std::uint32_t num_ranks = sim.config_.num_ranks;
  s & num_ranks;

  // --- components: base state + model state --------------------------
  std::uint64_t ncomp = sim.components_.size();
  s & ncomp;
  for (const auto& cp : sim.components_) {
    Component& c = *cp;
    std::string name = c.name_;
    std::uint8_t primary = c.is_primary_ ? 1 : 0;
    std::uint8_t ok = c.said_ok_ ? 1 : 0;
    // The rank is dynamic state since online rebalancing: a migrated
    // component must resume on the rank it was on at the snapshot, not
    // the one the partitioner would rebuild it on.
    std::uint32_t rank = c.rank_;
    s & name & primary & ok & rank & c.trace_seq_ & c.rng_;
    c.serialize_state(s);
  }

  // --- links: send sequences, polled-but-unconsumed events, faults ---
  std::uint64_t nlinks = sim.links_.size();
  s & nlinks;
  for (const auto& lp : sim.links_) {
    Link& l = *lp;
    s & l.send_seq_;
    std::uint64_t nq = l.poll_queue_.size();
    s & nq;
    for (const auto& ev : l.poll_queue_) detail::write_event(s, *ev);
    std::uint8_t has_fault = l.fault_ != nullptr ? 1 : 0;
    s & has_fault;
    if (l.fault_ != nullptr) l.fault_->serialize(s);
  }

  // --- clocks: phase, tick count, surviving handler order ------------
  std::uint64_t nclocks = sim.clocks_.size();
  s & nclocks;
  for (const auto& [key, cp] : sim.clocks_) {
    Clock& c = *cp;
    std::uint32_t rank = key.first;
    std::uint64_t period = key.second;
    std::uint8_t scheduled = c.scheduled_ ? 1 : 0;
    s & rank & period & c.cycle_ & c.ticks_ & scheduled;
    std::vector<ComponentId> order;
    order.reserve(c.handlers_.size());
    for (const auto& h : c.handlers_) order.push_back(h.comp);
    s & order;
  }

  // --- per-rank engine state: time, queues, counters ------------------
  for (auto& r : sim.ranks_) {
    s & r.now & r.events & r.mailbox_received & r.barrier_wait_seconds;
    // The vortex heap stores inline-key nodes; collect the event pointers
    // (clock ticks skipped, see is_clock_tick above) and sort them into
    // the engine's deterministic total order for reproducible bytes.
    std::vector<const Event*> pending;
    pending.reserve(r.vortex.heap_.size());
    for (const auto& node : r.vortex.heap_) {
      if (is_clock_tick(*node.ev)) continue;
      pending.push_back(node.ev.get());
    }
    std::sort(pending.begin(), pending.end(),
              [](const Event* a, const Event* b) {
                return EventOrder{}(*a, *b);
              });
    std::uint64_t n = pending.size();
    s & n;
    for (const Event* ev : pending) detail::write_event(s, *ev);
    // Counters include the skipped clock ticks; restore overlays them
    // after re-inserting events so they stay exact.
    std::uint64_t inserted = r.vortex.inserted_;
    std::uint64_t depth = r.vortex.max_depth_;
    s & inserted & depth;
    const auto mailbox = sorted_events(r.mailbox,
                                       /*skip_clock_ticks=*/false);
    std::uint64_t m = mailbox.size();
    s & m;
    for (const Event* ev : mailbox) detail::write_event(s, *ev);
  }

  // --- whole-engine counters ------------------------------------------
  std::uint64_t cross = sim.cross_rank_events_.load(std::memory_order_relaxed);
  s & cross & sim.run_stats_.sync_windows & sim.ckpt_taken_ &
      sim.ckpt_next_mark_;
  // Rebalance bookkeeping: the epoch phase and the current group's
  // per-component counts, so a resumed run reproduces the original
  // run's migration schedule exactly (conservative mode).
  s & sim.comp_epoch_events_ & sim.rebalance_epoch_ & sim.rebalances_ &
      sim.comps_migrated_;

  // --- statistics values (identity rebuilt, values overlaid) ----------
  std::uint64_t nstats = sim.stats_.all().size();
  s & nstats;
  for (const auto& st : sim.stats_.all()) {
    std::string comp = st->component();
    std::string name = st->name();
    s & comp & name;
    st->ckpt_io(s);
  }

  // --- observability buffers ------------------------------------------
  std::uint8_t has_tracer = sim.tracer_ != nullptr ? 1 : 0;
  s & has_tracer;
  if (sim.tracer_ != nullptr) sim.tracer_->ckpt_io(s);
  std::uint8_t has_metrics = sim.metrics_ != nullptr ? 1 : 0;
  s & has_metrics;
  if (sim.metrics_ != nullptr) sim.metrics_->ckpt_io(s);

  return std::move(s.buffer());
}

// ---------------------------------------------------------------------
// State restore (overlay onto a rebuilt, initialized simulation)
// ---------------------------------------------------------------------

void CheckpointEngine::fix_handler(Simulation& sim, Event& ev) {
  const LinkId id = ev.link_id_;
  if (id >= sim.links_.size()) {
    throw CheckpointError("checkpoint event has source link id " +
                          std::to_string(id) + " but the rebuilt model has " +
                          std::to_string(sim.links_.size()) +
                          " link endpoints (model/checkpoint mismatch)");
  }
  ev.handler_ = &sim.links_[id]->peer_->handler_;
}

void CheckpointEngine::reorder_clock_handlers(
    Clock& clock, const std::vector<ComponentId>& order) {
  std::vector<Clock::Handler> pool = std::move(clock.handlers_);
  std::vector<char> used(pool.size(), 0);
  std::vector<Clock::Handler> next;
  next.reserve(order.size());
  for (const ComponentId want : order) {
    bool found = false;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (used[i] == 0 && pool[i].comp == want) {
        used[i] = 1;
        next.push_back(std::move(pool[i]));
        found = true;
        break;
      }
    }
    if (!found) {
      throw CheckpointError(
          "checkpoint clock state names a handler of component id " +
          std::to_string(want) +
          " that the rebuilt model did not register (model/checkpoint "
          "mismatch)");
    }
  }
  // Handlers left in the pool had unregistered before the snapshot; they
  // are dropped, matching the uninterrupted run.
  clock.handlers_ = std::move(next);
}

void CheckpointEngine::restore(Simulation& sim,
                               std::vector<std::byte> state) {
  if (sim.state_ != Simulation::State::kInitialized) {
    throw CheckpointError(
        "restore requires a freshly initialized simulation");
  }
  Serializer s(std::move(state));

  std::uint32_t num_ranks = 0;
  s & num_ranks;
  if (num_ranks != sim.config_.num_ranks) {
    throw CheckpointError(
        "checkpoint was written with " + std::to_string(num_ranks) +
        " rank(s) but this run has " +
        std::to_string(sim.config_.num_ranks) +
        "; restart with --ranks " + std::to_string(num_ranks));
  }

  // --- components -----------------------------------------------------
  std::uint64_t ncomp = 0;
  s & ncomp;
  if (ncomp != sim.components_.size()) {
    throw CheckpointError("checkpoint has " + std::to_string(ncomp) +
                          " components but the rebuilt model has " +
                          std::to_string(sim.components_.size()));
  }
  std::vector<std::pair<ComponentId, RankId>> moved;
  for (const auto& cp : sim.components_) {
    Component& c = *cp;
    std::string name;
    std::uint8_t primary = 0;
    std::uint8_t ok = 0;
    std::uint32_t rank = 0;
    s & name & primary & ok & rank;
    if (name != c.name_) {
      throw CheckpointError("checkpoint component '" + name +
                            "' does not match rebuilt component '" + c.name_ +
                            "' (model/checkpoint mismatch)");
    }
    if ((primary != 0) != c.is_primary_) {
      throw CheckpointError("checkpoint primary flag of '" + name +
                            "' does not match the rebuilt model");
    }
    if (rank >= sim.config_.num_ranks) {
      throw CheckpointError("checkpoint places component '" + name +
                            "' on rank " + std::to_string(rank) +
                            " but this run has only " +
                            std::to_string(sim.config_.num_ranks) +
                            " rank(s)");
    }
    if (rank != c.rank_) moved.emplace_back(c.id_, rank);
    c.said_ok_ = (ok != 0);
    s & c.trace_seq_ & c.rng_;
    c.serialize_state(s);
  }

  // Apply online-rebalancing migrations that happened before the
  // snapshot: set the checkpointed rank and move the component's clock
  // handlers to the destination rank's clocks (created on demand, as
  // migration created them).  No vortex or arming work is needed — the
  // clock section below overlays cycle/tick/scheduled state and the
  // vortices are replaced wholesale.  The handler ORDER within each
  // clock is also overlaid below, so only membership matters here.
  for (const auto& [comp_id, to] : moved) {
    Component& c = *sim.components_[comp_id];
    const RankId from = c.rank_;
    c.rank_ = to;
    std::vector<std::pair<SimTime, Clock::Handler>> relocated;
    for (auto& [key, clock] : sim.clocks_) {
      if (key.first != from) continue;
      auto& handlers = clock->handlers_;
      for (std::size_t i = 0; i < handlers.size();) {
        if (handlers[i].comp == comp_id) {
          relocated.emplace_back(key.second, std::move(handlers[i]));
          handlers.erase(handlers.begin() +
                         static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    for (auto& [period, handler] : relocated) {
      // Direct push (not add_handler): restore must not auto-arm.
      sim.get_clock(to, period)->handlers_.push_back(std::move(handler));
    }
  }
  if (!moved.empty()) sim.refresh_partition();

  // --- links ----------------------------------------------------------
  std::uint64_t nlinks = 0;
  s & nlinks;
  if (nlinks != sim.links_.size()) {
    throw CheckpointError("checkpoint has " + std::to_string(nlinks) +
                          " link endpoints but the rebuilt model has " +
                          std::to_string(sim.links_.size()));
  }
  for (const auto& lp : sim.links_) {
    Link& l = *lp;
    s & l.send_seq_;
    std::uint64_t nq = 0;
    s & nq;
    l.poll_queue_.clear();
    for (std::uint64_t i = 0; i < nq; ++i) {
      l.poll_queue_.push_back(detail::read_event(s));
    }
    std::uint8_t has_fault = 0;
    s & has_fault;
    if ((has_fault != 0) != (l.fault_ != nullptr)) {
      throw CheckpointError(
          "checkpoint fault-model presence on port '" + l.port_ +
          "' does not match the rebuilt model (same SDL fault section "
          "required)");
    }
    if (l.fault_ != nullptr) l.fault_->serialize(s);
  }

  // --- clocks ---------------------------------------------------------
  std::uint64_t nclocks = 0;
  s & nclocks;
  // With rebalancing the checkpoint may hold MORE clocks than the
  // rebuild + migration replay produced: a multi-hop migration leaves
  // empty (handler-less) clocks on intermediate ranks.  Those are
  // recreated on demand below; fewer checkpointed clocks than rebuilt
  // ones is still a mismatch.
  if (nclocks != sim.clocks_.size() &&
      !(sim.config_.rebalance && nclocks > sim.clocks_.size())) {
    throw CheckpointError("checkpoint has " + std::to_string(nclocks) +
                          " clocks but the rebuilt model has " +
                          std::to_string(sim.clocks_.size()));
  }
  std::vector<std::pair<Clock*, bool>> rearm;
  rearm.reserve(nclocks);
  for (std::uint64_t i = 0; i < nclocks; ++i) {
    std::uint32_t rank = 0;
    std::uint64_t period = 0;
    s & rank & period;
    auto it = sim.clocks_.find({rank, period});
    if (it == sim.clocks_.end()) {
      if (sim.config_.rebalance && rank < sim.config_.num_ranks) {
        // Handler-less intermediate clock left behind by migration; the
        // order list below must be empty (reorder throws otherwise).
        (void)sim.get_clock(rank, period);
        it = sim.clocks_.find({rank, period});
      } else {
        throw CheckpointError("checkpoint clock (rank " +
                              std::to_string(rank) + ", period " +
                              std::to_string(period) +
                              "ps) not present in the rebuilt model");
      }
    }
    Clock& c = *it->second;
    std::uint8_t scheduled = 0;
    s & c.cycle_ & c.ticks_ & scheduled;
    std::vector<ComponentId> order;
    s & order;
    reorder_clock_handlers(c, order);
    c.scheduled_ = false;  // pending tick dies with the cleared vortex
    rearm.emplace_back(&c, scheduled != 0);
  }

  // --- per-rank state --------------------------------------------------
  struct StagedRank {
    std::vector<EventPtr> pending;
    std::uint64_t inserted = 0;
    std::uint64_t max_depth = 0;
    std::vector<EventPtr> mailbox;
  };
  std::vector<StagedRank> staged(sim.ranks_.size());
  for (std::size_t r = 0; r < sim.ranks_.size(); ++r) {
    Simulation::RankState& rank = sim.ranks_[r];
    // The rebuild's initial events (first clock ticks, setup sends) are
    // replaced wholesale by the checkpointed queues.
    rank.vortex.clear();
    rank.mailbox.clear();
    s & rank.now & rank.events & rank.mailbox_received &
        rank.barrier_wait_seconds;
    std::uint64_t n = 0;
    s & n;
    staged[r].pending.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      staged[r].pending.push_back(detail::read_event(s));
    }
    s & staged[r].inserted & staged[r].max_depth;
    std::uint64_t m = 0;
    s & m;
    staged[r].mailbox.reserve(m);
    for (std::uint64_t i = 0; i < m; ++i) {
      staged[r].mailbox.push_back(detail::read_event(s));
    }
  }

  // Re-arm clocks now that every rank's time is restored.  The invariant
  // "pending tick cycle = floor(now/period)+1" makes schedule_next(now)
  // reproduce the exact pending tick event the capture skipped.
  for (const auto& [clock, scheduled] : rearm) {
    if (!scheduled) continue;
    if (clock->handlers_.empty()) {
      throw CheckpointError(
          "checkpoint marks a clock scheduled but it has no surviving "
          "handlers (corrupt checkpoint)");
    }
    clock->schedule_next(sim.ranks_[clock->rank_].now);
  }

  // Insert the checkpointed events (handlers recomputed from their source
  // links), then overlay the exact queue counters.
  for (std::size_t r = 0; r < sim.ranks_.size(); ++r) {
    Simulation::RankState& rank = sim.ranks_[r];
    for (auto& ev : staged[r].pending) {
      fix_handler(sim, *ev);
      rank.vortex.insert(std::move(ev));
    }
    rank.vortex.inserted_ = staged[r].inserted;
    rank.vortex.max_depth_ = static_cast<std::size_t>(staged[r].max_depth);
    // The original run's heap grew to max_depth; pre-size the restored
    // heap so the resumed run doesn't re-pay the growth reallocations.
    rank.vortex.reserve(static_cast<std::size_t>(staged[r].max_depth));
    for (auto& ev : staged[r].mailbox) {
      fix_handler(sim, *ev);
      rank.mailbox.push_back(std::move(ev));
    }
  }

  // --- whole-engine counters ------------------------------------------
  std::uint64_t cross = 0;
  std::uint64_t windows = 0;
  s & cross & windows & sim.ckpt_taken_ & sim.ckpt_next_mark_;
  s & sim.comp_epoch_events_ & sim.rebalance_epoch_ & sim.rebalances_ &
      sim.comps_migrated_;
  sim.cross_rank_events_.store(cross, std::memory_order_relaxed);
  sim.run_stats_.sync_windows = windows;
  sim.ckpt_windows_base_ = windows;

  // --- statistics ------------------------------------------------------
  std::uint64_t nstats = 0;
  s & nstats;
  if (nstats != sim.stats_.all().size()) {
    throw CheckpointError(
        "checkpoint has " + std::to_string(nstats) +
        " statistics but the rebuilt model registered " +
        std::to_string(sim.stats_.all().size()) +
        " (observability/profiling flags must match the original run)");
  }
  for (const auto& st : sim.stats_.all()) {
    std::string comp;
    std::string name;
    s & comp & name;
    if (comp != st->component() || name != st->name()) {
      throw CheckpointError("checkpoint statistic '" + comp + "." + name +
                            "' does not match rebuilt statistic '" +
                            st->component() + "." + st->name() + "'");
    }
    st->ckpt_io(s);
  }

  // --- observability buffers ------------------------------------------
  std::uint8_t has_tracer = 0;
  s & has_tracer;
  if ((has_tracer != 0) != (sim.tracer_ != nullptr)) {
    throw CheckpointError(
        "checkpoint trace settings do not match this run (enable/disable "
        "--trace to match the original run)");
  }
  if (sim.tracer_ != nullptr) sim.tracer_->ckpt_io(s);
  std::uint8_t has_metrics = 0;
  s & has_metrics;
  if ((has_metrics != 0) != (sim.metrics_ != nullptr)) {
    throw CheckpointError(
        "checkpoint metrics settings do not match this run (enable/disable "
        "--metrics to match the original run)");
  }
  if (sim.metrics_ != nullptr) sim.metrics_->ckpt_io(s);

  // --- derived state ---------------------------------------------------
  std::uint32_t ok_count = 0;
  for (const auto& cp : sim.components_) {
    if (cp->is_primary_ && cp->said_ok_) ++ok_count;
  }
  sim.primary_ok_count_.store(ok_count, std::memory_order_release);

  if (!s.exhausted()) {
    throw CheckpointError(
        "checkpoint stream has " +
        std::to_string(s.buffer().size() - s.cursor()) +
        " trailing bytes (corrupt checkpoint)");
  }
}

// ---------------------------------------------------------------------
// File format
// ---------------------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'S', 'S', 'T', 'C', 'K', 'P', 'T', '1'};

/// Fixed-size little-endian header; the checksum covers the payload
/// (graph JSON followed by the state blob).
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t seq;
  std::uint64_t sim_time;
  std::uint64_t graph_bytes;
  std::uint64_t state_bytes;
  std::uint64_t checksum;
};
static_assert(sizeof(FileHeader) == 56);

[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t n,
                                  std::uint64_t h = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// POSIX write-all with EINTR handling.
void write_all(int fd, const void* data, std::size_t n,
               const std::string& path) {
  const auto* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw CheckpointError("checkpoint write to '" + path +
                            "' failed: " + std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// One discovered snapshot file in a checkpoint directory.
struct Snapshot {
  std::uint64_t seq = 0;
  fs::path path;
};

/// Files named "<base>.ckpt.<digits>" in `dir`, newest (highest seq)
/// first.  Non-matching files are ignored.
[[nodiscard]] std::vector<Snapshot> scan_checkpoints(const fs::path& dir) {
  std::vector<Snapshot> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const auto pos = name.rfind(".ckpt.");
    if (pos == std::string::npos) continue;
    const std::string suffix = name.substr(pos + 6);
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back({std::stoull(suffix), entry.path()});
  }
  std::sort(out.begin(), out.end(), [](const Snapshot& a, const Snapshot& b) {
    if (a.seq != b.seq) return a.seq > b.seq;
    return a.path.string() > b.path.string();
  });
  return out;
}

void fsync_path(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return;  // best effort (e.g. directories on odd filesystems)
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::string checkpoint_file_name(std::uint64_t seq) {
  std::string digits = std::to_string(seq);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return "sim.ckpt." + digits;
}

void write_checkpoint_file(const std::string& dir, const CheckpointData& data,
                           unsigned keep) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw CheckpointError("cannot create checkpoint directory '" + dir +
                          "': " + ec.message());
  }
  const fs::path final_path = fs::path(dir) / checkpoint_file_name(data.seq);
  // PID-tagged temp name: two processes sharing a checkpoint directory
  // (e.g. a daemon worker and a direct sstsim) can never collide on the
  // same in-flight temp file.
  const fs::path tmp_path =
      fs::path(dir) / (".tmp." + std::to_string(::getpid()) + "." +
                       checkpoint_file_name(data.seq));

  FileHeader hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof kMagic);
  hdr.version = kCheckpointVersion;
  hdr.flags = 0;
  hdr.seq = data.seq;
  hdr.sim_time = data.sim_time;
  hdr.graph_bytes = data.graph_json.size();
  hdr.state_bytes = data.state.size();
  hdr.checksum = fnv1a(data.state.data(), data.state.size(),
                       fnv1a(data.graph_json.data(), data.graph_json.size()));

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw CheckpointError("cannot create checkpoint temp file '" +
                          tmp_path.string() +
                          "': " + std::strerror(errno));
  }
  try {
    write_all(fd, &hdr, sizeof hdr, tmp_path.string());
    write_all(fd, data.graph_json.data(), data.graph_json.size(),
              tmp_path.string());
    write_all(fd, data.state.data(), data.state.size(), tmp_path.string());
    if (::fsync(fd) != 0) {
      throw CheckpointError("fsync of checkpoint '" + tmp_path.string() +
                            "' failed: " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    throw;
  }
  ::close(fd);

  // Atomic publish: a crash before this rename leaves the previous
  // snapshot set untouched; after it, the new snapshot is complete.
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp_path.c_str());
    throw CheckpointError("cannot publish checkpoint '" +
                          final_path.string() +
                          "': " + std::strerror(err));
  }
  fsync_path(dir, O_RDONLY | O_DIRECTORY);

  // Rotating retention: drop everything beyond the newest `keep`.
  if (keep > 0) {
    const auto snapshots = scan_checkpoints(dir);
    for (std::size_t i = keep; i < snapshots.size(); ++i) {
      std::error_code rm_ec;
      fs::remove(snapshots[i].path, rm_ec);
    }
  }
}

CheckpointData read_checkpoint_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw CheckpointError("cannot open checkpoint '" + path + "'");
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  if (f.bad()) {
    throw CheckpointError("error reading checkpoint '" + path + "'");
  }
  if (bytes.size() < sizeof(FileHeader)) {
    throw CheckpointError("checkpoint '" + path +
                          "' is truncated (shorter than the header)");
  }
  FileHeader hdr{};
  std::memcpy(&hdr, bytes.data(), sizeof hdr);
  if (std::memcmp(hdr.magic, kMagic, sizeof kMagic) != 0) {
    throw CheckpointError("'" + path + "' is not a checkpoint file");
  }
  if (hdr.version != kCheckpointVersion) {
    throw CheckpointError(
        "checkpoint '" + path + "' has format version " +
        std::to_string(hdr.version) + " but this build supports version " +
        std::to_string(kCheckpointVersion));
  }
  const std::uint64_t payload = bytes.size() - sizeof(FileHeader);
  if (hdr.graph_bytes > payload ||
      hdr.state_bytes > payload - hdr.graph_bytes) {
    throw CheckpointError("checkpoint '" + path + "' is truncated (header "
                          "promises more payload than the file holds)");
  }
  if (hdr.graph_bytes + hdr.state_bytes != payload) {
    throw CheckpointError("checkpoint '" + path +
                          "' has trailing bytes after the payload");
  }
  const char* graph_begin = bytes.data() + sizeof(FileHeader);
  const char* state_begin = graph_begin + hdr.graph_bytes;
  const std::uint64_t sum =
      fnv1a(state_begin, hdr.state_bytes,
            fnv1a(graph_begin, hdr.graph_bytes));
  if (sum != hdr.checksum) {
    throw CheckpointError("checkpoint '" + path +
                          "' failed checksum validation (corrupt)");
  }

  CheckpointData data;
  data.seq = hdr.seq;
  data.sim_time = hdr.sim_time;
  data.graph_json.assign(graph_begin, hdr.graph_bytes);
  data.state.resize(hdr.state_bytes);
  std::memcpy(data.state.data(), state_begin, hdr.state_bytes);
  return data;
}

CheckpointData load_checkpoint(const std::string& path,
                               std::string* loaded_path) {
  std::error_code ec;
  const bool is_dir = fs::is_directory(path, ec);

  std::vector<Snapshot> candidates;
  std::string primary_error;
  if (is_dir) {
    candidates = scan_checkpoints(path);
    if (candidates.empty()) {
      throw CheckpointError("no checkpoint files (*.ckpt.N) "
                            "in directory '" + path + "'");
    }
  } else {
    try {
      CheckpointData data = read_checkpoint_file(path);
      if (loaded_path != nullptr) *loaded_path = path;
      return data;
    } catch (const CheckpointError& e) {
      primary_error = e.what();
      std::cerr << "[sst] checkpoint rejected: " << e.what() << "\n";
    }
    // Fall back to the newest intact sibling snapshot.
    const fs::path parent = fs::path(path).parent_path();
    for (auto& snap :
         scan_checkpoints(parent.empty() ? fs::path(".") : parent)) {
      if (fs::equivalent(snap.path, path, ec)) continue;
      candidates.push_back(std::move(snap));
    }
    if (candidates.empty()) {
      throw CheckpointError(primary_error +
                            ", and no fallback checkpoint exists next to it");
    }
  }

  std::size_t rejected = 0;
  for (const auto& snap : candidates) {
    try {
      CheckpointData data = read_checkpoint_file(snap.path.string());
      if (!is_dir || rejected > 0) {
        std::cerr << "[sst] falling back to intact checkpoint '"
                  << snap.path.string() << "' (seq " << data.seq << ")\n";
      }
      if (loaded_path != nullptr) *loaded_path = snap.path.string();
      return data;
    } catch (const CheckpointError& e) {
      ++rejected;
      std::cerr << "[sst] checkpoint rejected: " << e.what() << "\n";
    }
  }
  throw CheckpointError(
      "no intact checkpoint under '" + path + "' (" +
      std::to_string(candidates.size() + (is_dir ? 0 : 1)) +
      " candidate(s) rejected by validation)");
}

void install_writer(Simulation& sim, std::string graph_json,
                    std::uint64_t start_seq) {
  auto seq = std::make_shared<std::uint64_t>(start_seq);
  sim.set_checkpoint_writer(
      [graph = std::move(graph_json), seq](Simulation& s) {
        CheckpointData data;
        data.seq = ++*seq;
        data.sim_time = CheckpointEngine::sim_time(s);
        data.graph_json = graph;
        data.state = CheckpointEngine::capture(s);
        write_checkpoint_file(s.config().checkpoint_dir, data,
                              s.config().checkpoint_keep);
      });
}

}  // namespace sst::ckpt
