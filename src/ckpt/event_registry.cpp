#include "ckpt/event_registry.h"

#include <typeinfo>
#include <utility>

namespace sst::ckpt {

EventRegistry& EventRegistry::instance() {
  static EventRegistry registry;
  return registry;
}

EventRegistry::EventRegistry() {
  // The one engine-level event type models can leave in flight.
  register_type("core.Null", [] { return make_event<NullEvent>(); });
}

void EventRegistry::register_type(const std::string& tag, Factory factory) {
  factories_[tag] = std::move(factory);
}

bool EventRegistry::known(const std::string& tag) const {
  return factories_.find(tag) != factories_.end();
}

std::vector<std::string> EventRegistry::registered_tags() const {
  std::vector<std::string> tags;
  tags.reserve(factories_.size());
  for (const auto& [tag, factory] : factories_) {
    (void)factory;
    tags.push_back(tag);
  }
  return tags;
}

void EventRegistry::write(Serializer& s, const Event& ev) const {
  const char* tag = ev.ckpt_type();
  if (tag == nullptr) {
    throw CheckpointError(
        std::string("cannot checkpoint: pending event of type '") +
        typeid(ev).name() + "' does not implement ckpt_type()");
  }
  std::string name = tag;
  if (!known(name)) {
    throw CheckpointError("cannot checkpoint: event type '" + name +
                          "' is not registered (missing register_library "
                          "call?)");
  }
  s & name;
  // Engine ordering fields (friend access); the handler pointer is
  // recomputed from link_id on restore.
  auto& mut = const_cast<Event&>(ev);
  s & mut.delivery_time_;
  s & mut.priority_;
  s & mut.link_id_;
  s & mut.order_;
  mut.ckpt_fields(s);
}

EventPtr EventRegistry::read(Serializer& s) const {
  std::string name;
  s & name;
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw CheckpointError("checkpoint holds event type '" + name +
                          "' that is not registered in this build");
  }
  EventPtr ev = it->second();
  s & ev->delivery_time_;
  s & ev->priority_;
  s & ev->link_id_;
  s & ev->order_;
  ev->handler_ = nullptr;
  ev->ckpt_fields(s);
  return ev;
}

namespace detail {

void write_event(Serializer& s, const Event& ev) {
  EventRegistry::instance().write(s, ev);
}

EventPtr read_event(Serializer& s) {
  return EventRegistry::instance().read(s);
}

}  // namespace detail

}  // namespace sst::ckpt
