#include "ckpt/migrate.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serializer.h"
#include "core/clock.h"
#include "core/component.h"
#include "core/link.h"
#include "core/simulation.h"

namespace sst::ckpt {

void Migrator::migrate(Simulation& sim, ComponentId comp_id, RankId to) {
  if (comp_id >= sim.components_.size()) {
    throw SimulationError("migrate: component id " + std::to_string(comp_id) +
                          " out of range");
  }
  if (to >= sim.config_.num_ranks) {
    throw SimulationError("migrate: target rank " + std::to_string(to) +
                          " out of range");
  }
  Component& comp = *sim.components_[comp_id];
  const RankId from = comp.rank_;
  if (from == to) return;
  auto& src = sim.ranks_[from];
  auto& dst = sim.ranks_[to];

  // --- 1. Pull the component's pending deliveries out of the source
  // vortex: every event whose source link delivers into this component.
  // (Clock ticks live in the engine's source-id namespace and are
  // re-homed separately below.)  Sorted into the engine's total order so
  // the serialized blob is reproducible.
  std::vector<EventPtr> pending =
      src.vortex.extract_if([&sim, comp_id](LinkId id) {
        return id < Event::kClockSourceBase &&
               sim.link_target_[id] == comp_id;
      });
  std::sort(pending.begin(), pending.end(),
            [](const EventPtr& a, const EventPtr& b) {
              return EventOrder{}(*a, *b);
            });

  // --- 2. Pack dynamic state + pending events — the same bytes a
  // checkpoint would carry for this component.
  Serializer pack(Serializer::Mode::kPack);
  std::uint8_t ok = comp.said_ok_ ? 1 : 0;
  pack & ok & comp.trace_seq_ & comp.rng_;
  comp.serialize_state(pack);
  std::uint64_t nev = pending.size();
  pack & nev;
  for (const auto& ev : pending) detail::write_event(pack, *ev);
  pending.clear();

  // --- 3. Unpack back onto the component.  The round trip is the point:
  // state that fails to survive serialization is caught here, at
  // migration time, instead of corrupting a later checkpoint restore.
  Serializer unpack(std::move(pack.buffer()));
  ok = 0;
  unpack & ok & comp.trace_seq_ & comp.rng_;
  comp.said_ok_ = (ok != 0);
  comp.serialize_state(unpack);
  std::uint64_t mev = 0;
  unpack & mev;
  std::vector<EventPtr> events;
  events.reserve(mev);
  for (std::uint64_t i = 0; i < mev; ++i) {
    events.push_back(detail::read_event(unpack));
  }
  if (!unpack.exhausted()) {
    throw SimulationError(
        "migrate: component '" + comp.name_ +
        "' left trailing bytes in its state blob (serialize_state "
        "pack/unpack asymmetry)");
  }

  // --- 4. The component now lives on the target rank.
  comp.rank_ = to;

  // --- 5. Re-insert the pending events into the target vortex, handler
  // recomputed from the source link (Link objects never move).  In
  // conservative/adaptive modes every pending event is at or above the
  // last horizon, hence above dst.now — no correction can trigger.  In
  // lax mode a previously corrected straggler may sit below the target
  // rank's clock; it gets the standard bounded straggler correction.
  for (auto& ev : events) {
    ev->handler_ = &sim.links_[ev->link_id_]->peer_->handler_;
    if (sim.lax_active_ && ev->delivery_time_ < dst.now) {
      const SimTime skew = dst.now - ev->delivery_time_;
      ev->delivery_time_ = dst.now;
      ++dst.lax_stragglers;
      if (skew > dst.lax_max_skew) dst.lax_max_skew = skew;
    }
    dst.vortex.insert(std::move(ev));
  }

  // --- 6. Re-home clock handlers tick-exactly.  At a sync barrier every
  // armed clock of period p has pending cycle ceil(H/p) for the shared
  // horizon H (all modes — lax ranks share the extended horizon too), so
  // the source clock's pending cycle is exactly the cycle the target
  // clock must tick next.
  struct ClockMove {
    SimTime period = 0;
    Cycle pending = 0;
    Clock* source = nullptr;
    std::vector<Clock::Handler> handlers;
  };
  std::vector<ClockMove> clock_moves;
  for (auto& [key, clock_ptr] : sim.clocks_) {
    if (key.first != from) continue;
    Clock& sclk = *clock_ptr;
    ClockMove mv;
    mv.period = key.second;
    mv.source = &sclk;
    auto& hs = sclk.handlers_;
    for (std::size_t i = 0; i < hs.size();) {
      if (hs[i].comp == comp_id) {
        mv.handlers.push_back(std::move(hs[i]));
        hs.erase(hs.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (mv.handlers.empty()) continue;
    if (!sclk.scheduled_) {
      throw SimulationError(
          "migrate: source clock (period " + std::to_string(mv.period) +
          "ps) has handlers but no pending tick (engine bug)");
    }
    mv.pending = sclk.cycle_;
    clock_moves.push_back(std::move(mv));
  }
  for (auto& mv : clock_moves) {
    Clock* dclk = sim.get_clock(to, mv.period);
    if (dclk->scheduled_) {
      // Tick-cycle agreement: both clocks face the same horizon.
      if (dclk->cycle_ != mv.pending) {
        throw SimulationError(
            "migrate: clock cycle mismatch moving period " +
            std::to_string(mv.period) + "ps handlers: source pending cycle " +
            std::to_string(mv.pending) + ", target pending cycle " +
            std::to_string(dclk->cycle_) + " (engine bug)");
      }
      for (auto& h : mv.handlers) dclk->handlers_.push_back(std::move(h));
    } else {
      if (!dclk->handlers_.empty()) {
        throw SimulationError(
            "migrate: target clock (period " + std::to_string(mv.period) +
            "ps) has handlers but no pending tick (engine bug)");
      }
      // Direct push, bypassing add_handler's auto-arm: the clock must
      // tick at exactly the source's pending cycle, so arm explicitly.
      // schedule_next(now) arms cycle now/period + 1.
      for (auto& h : mv.handlers) dclk->handlers_.push_back(std::move(h));
      dclk->schedule_next((mv.pending - 1) * mv.period);
    }
    // If the source clock just lost its last handler, its pending tick
    // in the source vortex would fire into an empty dispatch (wasted
    // work) and, worse, leave a "scheduled but handler-less" clock that
    // checkpoint restore rejects.  Extract the tick (unique per (rank,
    // period) by construction of the clock source id) and park it in the
    // spare slot.
    Clock* sclk = mv.source;
    if (sclk->handlers_.empty() && sclk->scheduled_) {
      const LinkId tick_src =
          Event::kClockSourceBase |
          static_cast<LinkId>(mv.period & 0x7FFF'FFFFU);
      auto ticks = src.vortex.extract_if(
          [tick_src](LinkId id) { return id == tick_src; });
      if (ticks.size() != 1) {
        throw SimulationError(
            "migrate: expected exactly one pending tick for period " +
            std::to_string(mv.period) + "ps, found " +
            std::to_string(ticks.size()) + " (engine bug)");
      }
      sclk->spare_tick_ = std::move(ticks.front());
      sclk->scheduled_ = false;
    }
  }
}

void install_migrator(Simulation& sim) {
  sim.set_migrator([](Simulation& s, ComponentId comp, RankId to) {
    Migrator::migrate(s, comp, to);
  });
}

}  // namespace sst::ckpt
