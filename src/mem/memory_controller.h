// Memory controller: terminates the memory hierarchy.  Owns a backend
// (detailed DRAM timing or the abstract fixed-latency model — SST's
// multi-fidelity knob) and converts MemEvents into backend accesses.
//
// Ports:
//   "cpu" — upstream
//
// Params:
//   backend        "dram" | "simple"                   (default "dram")
//   preset         "DDR2" | "DDR3" | "GDDR5"           (default "DDR3")
//   latency        simple backend latency              (default "60ns")
//   bandwidth_gbs  simple backend bandwidth in GB/s    (default 10.667)
//   ber            per-bit transient flip probability  (default 0.0 = off)
//   ecc            "secded" | "none"                   (default "secded")
//   fatal_uncorrected  throw on an uncorrectable error (default false)
//
// Fault model: with ber > 0 every read samples bit-flips per 64-bit word
// (SECDED(72,64) organisation).  With ECC, single-bit flips are corrected
// ("ecc_corrected") and multi-bit flips detected ("ecc_uncorrected");
// without, any flip is silent corruption ("silent_errors").  Sampling
// draws from the component RNG stream, so counts are deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/component.h"
#include "fault/ecc.h"
#include "mem/dram.h"
#include "mem/mem_event.h"

namespace sst::mem {

class MemoryController final : public Component {
 public:
  explicit MemoryController(Params& params);

  [[nodiscard]] const MemBackend& backend() const { return *backend_; }
  /// Non-null when the backend is the detailed DRAM model.
  [[nodiscard]] const DramBackend* dram() const {
    return dynamic_cast<const DramBackend*>(backend_.get());
  }

  [[nodiscard]] std::uint64_t reads() const { return reads_->count(); }
  [[nodiscard]] std::uint64_t writes() const { return writes_->count(); }
  [[nodiscard]] std::uint64_t bytes_transferred() const {
    return bytes_->count();
  }
  [[nodiscard]] std::uint64_t corrected_errors() const {
    return ecc_corrected_->count();
  }
  [[nodiscard]] std::uint64_t uncorrected_errors() const {
    return ecc_uncorrected_->count();
  }
  [[nodiscard]] std::uint64_t silent_errors() const {
    return silent_errors_->count();
  }

  void finish() override;

  void serialize_state(ckpt::Serializer& s) override;
  /// Registers the private CompletionEvent with the checkpoint event
  /// registry (called from mem::register_library()).
  static void register_ckpt_events();

 private:
  /// Carries the prepared response until the backend completion time.
  class CompletionEvent final : public Event {
   public:
    explicit CompletionEvent(EventPtr resp) : resp_(std::move(resp)) {}
    [[nodiscard]] EventPtr take_response() { return std::move(resp_); }
    [[nodiscard]] bool is_wakeup() const { return resp_ == nullptr; }

    [[nodiscard]] const char* ckpt_type() const override {
      return "mem.Completion";
    }
    void ckpt_fields(ckpt::Serializer& s) override;

   private:
    EventPtr resp_;
  };

  void handle_cpu(EventPtr ev);
  void handle_complete(EventPtr ev);
  /// Samples transient bit-flips for one read of `size` bytes.
  void sample_read_faults(std::uint32_t size);
  /// Advances the backend, dispatches decided completions, re-arms the
  /// wakeup for the backend's next decision point.
  void pump();

  Link* cpu_link_;
  Link* self_link_;
  std::unique_ptr<MemBackend> backend_;

  // In-flight requests awaiting a backend decision: token -> prepared
  // response (null for PutM, which gets no response).
  std::map<std::uint64_t, EventPtr> awaiting_;
  std::map<std::uint64_t, SimTime> arrival_;
  std::uint64_t next_token_ = 1;
  SimTime wake_armed_for_ = kTimeNever;

  fault::SecdedModel ecc_model_{0.0};
  bool fatal_uncorrected_ = false;

  Counter* reads_;
  Counter* writes_;
  Counter* bytes_;
  Accumulator* access_latency_;
  Counter* row_hits_;
  Counter* row_misses_;
  Counter* ecc_corrected_;
  Counter* ecc_uncorrected_;
  Counter* silent_errors_;
};

}  // namespace sst::mem
