// MemEvent: the request/response protocol spoken on memory-hierarchy links
// (CPU <-> cache <-> bus <-> memory controller).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/event.h"
#include "core/types.h"

namespace sst::mem {

using Addr = std::uint64_t;

enum class MemCmd : std::uint8_t {
  kGetS,      // read
  kGetX,      // write (write-allocate: fetches the line too)
  kGetSResp,  // read response
  kGetXResp,  // write acknowledgement
  kPutM,      // write-back of a dirty line (no response)
};

[[nodiscard]] constexpr bool is_request(MemCmd c) {
  return c == MemCmd::kGetS || c == MemCmd::kGetX || c == MemCmd::kPutM;
}
[[nodiscard]] constexpr bool is_response(MemCmd c) {
  return c == MemCmd::kGetSResp || c == MemCmd::kGetXResp;
}
[[nodiscard]] constexpr bool expects_response(MemCmd c) {
  return c == MemCmd::kGetS || c == MemCmd::kGetX;
}
[[nodiscard]] constexpr MemCmd response_for(MemCmd c) {
  return c == MemCmd::kGetS ? MemCmd::kGetSResp : MemCmd::kGetXResp;
}

[[nodiscard]] inline const char* to_string(MemCmd c) {
  switch (c) {
    case MemCmd::kGetS: return "GetS";
    case MemCmd::kGetX: return "GetX";
    case MemCmd::kGetSResp: return "GetSResp";
    case MemCmd::kGetXResp: return "GetXResp";
    case MemCmd::kPutM: return "PutM";
  }
  return "?";
}

class MemEvent final : public Event {
 public:
  MemEvent(MemCmd cmd, Addr addr, std::uint32_t size, std::uint64_t req_id)
      : cmd_(cmd), addr_(addr), size_(size), req_id_(req_id) {}

  [[nodiscard]] MemCmd cmd() const { return cmd_; }
  [[nodiscard]] Addr addr() const { return addr_; }
  [[nodiscard]] std::uint32_t size() const { return size_; }

  /// Request identifier chosen by the original requester; responses carry
  /// the same id so outstanding requests can be matched.
  [[nodiscard]] std::uint64_t req_id() const { return req_id_; }

  /// Routing breadcrumb used by Bus components: the upstream port index
  /// the request entered on, so the response can be steered back.
  [[nodiscard]] std::uint32_t bus_src() const { return bus_src_; }
  void set_bus_src(std::uint32_t p) { bus_src_ = p; }

  /// True while addr() is a virtual address that still needs translation
  /// by a vm.Tlb; cleared when the TLB rewrites the address. The asid
  /// names the address space the virtual address belongs to.
  [[nodiscard]] bool virt() const { return virt_; }
  void set_virt(bool v) { virt_ = v; }
  [[nodiscard]] std::uint32_t asid() const { return asid_; }
  void set_asid(std::uint32_t a) { asid_ = a; }

  /// Builds the matching response event (same id / addr / size).
  [[nodiscard]] EventPtr make_response() const {
    auto resp =
        std::make_unique<MemEvent>(response_for(cmd_), addr_, size_, req_id_);
    resp->bus_src_ = bus_src_;
    resp->asid_ = asid_;
    return resp;
  }

  [[nodiscard]] std::string describe() const {
    return std::string(to_string(cmd_)) + " 0x" + [this] {
      char buf[20];
      std::snprintf(buf, sizeof buf, "%llx",
                    static_cast<unsigned long long>(addr_));
      return std::string(buf);
    }() + " size=" + std::to_string(size_);
  }

  [[nodiscard]] const char* ckpt_type() const override {
    return "mem.MemEvent";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  MemCmd cmd_;
  Addr addr_;
  std::uint32_t size_;
  std::uint64_t req_id_;
  std::uint32_t bus_src_ = 0;
  bool virt_ = false;
  std::uint32_t asid_ = 0;
};

}  // namespace sst::mem
