// DRAM timing model (DRAMSim-class substitute).
//
// Models a single memory channel with B banks: per-bank row-buffer state
// (open row, activate/precharge timing), the shared data bus (burst
// serialization — where peak bandwidth comes from), JEDEC-style timing
// parameters tCL / tRCD / tRP / tRAS, and an FR-FCFS scheduler: pending
// requests are reordered so row-buffer hits issue ahead of older misses,
// exactly the policy real controllers use to keep narrow-row parts
// (GDDR5) from thrashing under interleaved streams.
//
// Address mapping uses skewed row interleaving (bank = f(row) with two
// skew terms) so power-of-two strides — cache capacities, array pitches —
// do not alias competing streams into one bank.
//
// The backend interface is pull-based: the owning MemoryController pushes
// requests, then repeatedly advances the backend to the current time and
// collects scheduled completions; next_action() tells the controller when
// to wake the backend again.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "mem/mem_event.h"

namespace sst::mem {

/// Timing and organization of one DRAM channel.
struct DramTimingParams {
  std::string name = "generic";
  std::uint32_t num_banks = 8;
  std::uint64_t row_bytes = 8192;      // row-buffer (page) size
  double peak_bandwidth_gbs = 10.667;  // data-bus bandwidth, GB/s
  SimTime t_cl = 13'500;               // CAS latency (ps)
  SimTime t_rcd = 13'500;              // RAS-to-CAS (ps)
  SimTime t_rp = 13'500;               // precharge (ps)
  SimTime t_ras = 36'000;              // row-active minimum (ps)
  // Energy model hooks (used by power::DramPowerModel).
  double energy_per_access_nj = 15.0;  // per 64B access
  double background_power_w = 0.75;    // static / refresh per channel
  double cost_per_gb_usd = 8.0;

  /// Time for one cache line on the data bus.
  [[nodiscard]] SimTime burst_time(std::uint32_t bytes) const;

  // JEDEC-flavoured presets used by the design-space experiments.
  static DramTimingParams ddr2_800();
  static DramTimingParams ddr3_1333();
  static DramTimingParams gddr5();
  /// Lookup by name ("DDR2", "DDR3", "GDDR5"); throws ConfigError.
  static DramTimingParams preset(std::string_view name);
};

/// A finished memory access: the token given at push(), and the simulated
/// time its data completed on the bus.
struct MemCompletion {
  std::uint64_t token;
  SimTime time;

  void ckpt_io(ckpt::Serializer& s);
};

/// Interface for memory-controller backends.
class MemBackend {
 public:
  virtual ~MemBackend() = default;

  /// Accepts a request at time `now`.
  virtual void push(std::uint64_t token, Addr addr, bool is_write,
                    std::uint32_t bytes, SimTime now) = 0;

  /// Makes all scheduling decisions possible up to time `now`; returns
  /// the completions decided by those issues (their completion times may
  /// lie in the future — the controller schedules the responses).
  virtual std::vector<MemCompletion> advance(SimTime now) = 0;

  /// Earliest future time at which advance() could decide something new,
  /// or kTimeNever when no requests are pending.
  [[nodiscard]] virtual SimTime next_action() const = 0;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Checkpoint hook: (un)packs dynamic scheduling state.  Backends are
  /// rebuilt from config on restore, so only runtime state goes here.
  virtual void serialize(ckpt::Serializer& s) = 0;
};

/// Fixed-latency, bandwidth-throttled backend (the "abstract model" end
/// of SST's multi-fidelity spectrum).  Decisions are immediate.
class SimpleBackend final : public MemBackend {
 public:
  SimpleBackend(SimTime latency, double bandwidth_gbs);

  void push(std::uint64_t token, Addr addr, bool is_write,
            std::uint32_t bytes, SimTime now) override;
  std::vector<MemCompletion> advance(SimTime now) override;
  [[nodiscard]] SimTime next_action() const override { return kTimeNever; }
  [[nodiscard]] const std::string& name() const override { return name_; }
  void serialize(ckpt::Serializer& s) override;

 private:
  std::string name_ = "simple";
  SimTime latency_;
  double bytes_per_ps_;
  SimTime bus_free_ = 0;
  std::vector<MemCompletion> decided_;
};

/// Detailed bank/row/bus DRAM backend with FR-FCFS scheduling.
class DramBackend final : public MemBackend {
 public:
  explicit DramBackend(DramTimingParams params);

  void push(std::uint64_t token, Addr addr, bool is_write,
            std::uint32_t bytes, SimTime now) override;
  std::vector<MemCompletion> advance(SimTime now) override;
  [[nodiscard]] SimTime next_action() const override;
  [[nodiscard]] const std::string& name() const override {
    return params_.name;
  }

  [[nodiscard]] const DramTimingParams& params() const { return params_; }

  // Introspection for statistics / tests.
  [[nodiscard]] std::uint64_t row_hits() const { return row_hits_; }
  [[nodiscard]] std::uint64_t row_misses() const { return row_misses_; }
  [[nodiscard]] std::uint64_t accesses() const {
    return row_hits_ + row_misses_;
  }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Address decomposition (exposed for tests).
  [[nodiscard]] std::uint32_t bank_of(Addr addr) const;
  [[nodiscard]] std::uint64_t row_of(Addr addr) const;

  void serialize(ckpt::Serializer& s) override;

 private:
  struct Bank {
    std::uint64_t open_row = ~0ULL;
    SimTime ready = 0;      // earliest next command issue
    SimTime ras_done = 0;   // row-active window end (tRAS)

    void ckpt_io(ckpt::Serializer& s);
  };

  struct Pending {
    std::uint64_t token;
    Addr addr;
    std::uint32_t bytes;
    SimTime arrival;
    std::uint64_t seq;  // FCFS order among equal priority

    void ckpt_io(ckpt::Serializer& s);
  };

  /// Earliest time request `p` could issue its first command.
  [[nodiscard]] SimTime issue_time(const Pending& p) const;
  /// Issues `p` (updates bank and bus state); returns data-complete time.
  SimTime issue(const Pending& p);

  DramTimingParams params_;
  std::vector<Bank> banks_;
  SimTime data_bus_free_ = 0;
  std::vector<Pending> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
};

}  // namespace sst::mem
