#include "mem/coherence.h"

#include <utility>

#include "ckpt/serializer.h"

namespace sst::mem {

namespace {
[[nodiscard]] bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}
}  // namespace

// ---------------------------------------------------------------------
// SnoopBus
// ---------------------------------------------------------------------

SnoopBus::SnoopBus(Params& params) {
  const auto n = params.required<std::uint32_t>("num_caches");
  if (n == 0) {
    throw ConfigError("snoop bus '" + name() + "': num_caches must be >= 1");
  }
  occupancy_ = params.find_time("occupancy", "6ns");

  cache_links_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    cache_links_.push_back(configure_link(
        "cache" + std::to_string(i),
        [this, i](EventPtr ev) { handle_cache(i, std::move(ev)); }));
  }
  mem_link_ = configure_link(
      "mem", [this](EventPtr ev) { handle_mem(std::move(ev)); });

  transactions_ = stat_counter("transactions");
  interventions_ = stat_counter("interventions");
  invalidation_txns_ = stat_counter("invalidation_txns");
  queue_depth_ = stat_accumulator("queue_depth");
}

void SnoopBus::handle_cache(std::uint32_t port, EventPtr ev) {
  if (auto* resp = dynamic_cast<SnoopRespEvent*>(ev.get())) {
    if (!busy_ || resp->txn() != active_.txn_id) {
      throw SimulationError("snoop bus '" + name() +
                            "': response for inactive transaction");
    }
    active_.shared = active_.shared || resp->had_line();
    active_.intervention = active_.intervention || resp->supplied_data();
    if (active_.pending_snoops == 0) {
      throw SimulationError("snoop bus '" + name() + "': excess snoop resp");
    }
    if (--active_.pending_snoops == 0) finish_txn();
    return;
  }

  auto req = event_cast<CoherenceEvent>(std::move(ev));
  switch (req->cmd()) {
    case CoherenceEvent::Cmd::kGetS:
    case CoherenceEvent::Cmd::kGetX:
    case CoherenceEvent::Cmd::kUpgrade:
    case CoherenceEvent::Cmd::kPutM:
      break;
    default:
      throw SimulationError("snoop bus '" + name() +
                            "': response event on cache port");
  }
  Txn txn;
  txn.src_port = port;
  txn.cmd = req->cmd();
  txn.line = req->line();
  txn.size = req->size();
  txn.req_id = req->id();
  txn.txn_id = next_txn_id_++;
  queue_.push_back(txn);
  queue_depth_->add(static_cast<double>(queue_.size()));
  if (!busy_) start_next();
}

void SnoopBus::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  active_ = queue_.front();
  queue_.pop_front();
  transactions_->add();

  if (active_.cmd == CoherenceEvent::Cmd::kPutM) {
    // Write-backs go straight to memory; no snoop needed (the writer held
    // the line exclusively).  Ack the cache so it can clear its WB buffer.
    mem_link_->send(std::make_unique<MemEvent>(MemCmd::kPutM, active_.line,
                                               active_.size, active_.txn_id),
                    occupancy_);
    auto ack = std::make_unique<CoherenceEvent>(
        CoherenceEvent::Cmd::kPutMAck, active_.line, active_.size,
        active_.req_id);
    cache_links_[active_.src_port]->send(std::move(ack), occupancy_);
    start_next();
    return;
  }

  if (active_.cmd != CoherenceEvent::Cmd::kGetS) invalidation_txns_->add();

  // Broadcast the snoop to every other cache.
  SnoopEvent::Kind kind;
  switch (active_.cmd) {
    case CoherenceEvent::Cmd::kGetS:
      kind = SnoopEvent::Kind::kRead;
      break;
    case CoherenceEvent::Cmd::kGetX:
      kind = SnoopEvent::Kind::kReadExclusive;
      break;
    default:
      kind = SnoopEvent::Kind::kInvalidate;
      break;
  }
  active_.pending_snoops =
      static_cast<std::uint32_t>(cache_links_.size()) - 1;
  if (active_.pending_snoops == 0) {
    finish_txn();
    return;
  }
  for (std::uint32_t i = 0; i < cache_links_.size(); ++i) {
    if (i == active_.src_port) continue;
    cache_links_[i]->send(
        std::make_unique<SnoopEvent>(kind, active_.line, active_.txn_id),
        occupancy_);
  }
}

void SnoopBus::finish_txn() {
  if (active_.cmd == CoherenceEvent::Cmd::kUpgrade) {
    auto resp = std::make_unique<CoherenceEvent>(
        CoherenceEvent::Cmd::kUpgradeResp, active_.line, active_.size,
        active_.req_id);
    cache_links_[active_.src_port]->send(std::move(resp), occupancy_);
    start_next();
    return;
  }

  if (active_.intervention) {
    // Cache-to-cache transfer: the owner's data goes to the requester and
    // is written back so memory stays clean.
    interventions_->add();
    mem_link_->send(std::make_unique<MemEvent>(MemCmd::kPutM, active_.line,
                                               active_.size, active_.txn_id));
    auto resp = std::make_unique<CoherenceEvent>(
        active_.cmd == CoherenceEvent::Cmd::kGetS
            ? CoherenceEvent::Cmd::kGetSResp
            : CoherenceEvent::Cmd::kGetXResp,
        active_.line, active_.size, active_.req_id);
    resp->set_shared(active_.cmd == CoherenceEvent::Cmd::kGetS);
    resp->set_intervention(true);
    cache_links_[active_.src_port]->send(std::move(resp), occupancy_);
    start_next();
    return;
  }

  // No owner: fetch the line from memory; the transaction completes when
  // the memory response arrives (handle_mem).
  mem_link_->send(std::make_unique<MemEvent>(MemCmd::kGetS, active_.line,
                                             active_.size, active_.txn_id),
                  occupancy_);
}

void SnoopBus::handle_mem(EventPtr ev) {
  auto mresp = event_cast<MemEvent>(std::move(ev));
  if (!is_response(mresp->cmd())) {
    throw SimulationError("snoop bus '" + name() + "': request on mem port");
  }
  if (!busy_ || mresp->req_id() != active_.txn_id) {
    throw SimulationError("snoop bus '" + name() +
                          "': memory response for inactive transaction");
  }
  auto resp = std::make_unique<CoherenceEvent>(
      active_.cmd == CoherenceEvent::Cmd::kGetS
          ? CoherenceEvent::Cmd::kGetSResp
          : CoherenceEvent::Cmd::kGetXResp,
      active_.line, active_.size, active_.req_id);
  resp->set_shared(active_.cmd == CoherenceEvent::Cmd::kGetS &&
                   active_.shared);
  cache_links_[active_.src_port]->send(std::move(resp), occupancy_);
  start_next();
}

// ---------------------------------------------------------------------
// CoherentCache
// ---------------------------------------------------------------------

CoherentCache::CoherentCache(Params& params) {
  const std::uint64_t size = params.required<UnitAlgebra>("size").to_bytes();
  line_size_ = params.find<std::uint32_t>("line_size", 64);
  assoc_ = params.find<std::uint32_t>("assoc", 4);
  hit_latency_ = params.find_period("hit_latency", "1ns");
  max_mshrs_ = params.find<std::uint32_t>("mshrs", 8);
  if (!is_power_of_two(line_size_)) {
    throw ConfigError("coherent cache '" + name() +
                      "': line_size must be a power of 2");
  }
  if (assoc_ == 0 || max_mshrs_ == 0) {
    throw ConfigError("coherent cache '" + name() +
                      "': assoc and mshrs must be >= 1");
  }
  const std::uint64_t lines = size / line_size_;
  if (lines == 0 || lines % assoc_ != 0 ||
      !is_power_of_two(lines / assoc_)) {
    throw ConfigError("coherent cache '" + name() +
                      "': size must give a power-of-two set count");
  }
  num_sets_ = static_cast<std::uint32_t>(lines / assoc_);
  sets_.assign(num_sets_, std::vector<Line>(assoc_));

  cpu_link_ = configure_link(
      "cpu", [this](EventPtr ev) { handle_cpu(std::move(ev)); });
  bus_link_ = configure_link(
      "bus", [this](EventPtr ev) { handle_bus(std::move(ev)); });

  hits_ = stat_counter("hits");
  misses_ = stat_counter("misses");
  invalidations_ = stat_counter("invalidations");
  supplied_ = stat_counter("interventions_supplied");
  upgrades_ = stat_counter("upgrades");
  upgrade_races_ = stat_counter("upgrade_races");
  writebacks_ = stat_counter("writebacks");
}

CoherentCache::Line* CoherentCache::find_line(Addr a) {
  auto& set = sets_[set_index(a)];
  const std::uint64_t tag = tag_of(a);
  for (auto& line : set) {
    if (line.state != MesiState::kInvalid && line.tag == tag) return &line;
  }
  return nullptr;
}

const CoherentCache::Line* CoherentCache::find_line(Addr a) const {
  return const_cast<CoherentCache*>(this)->find_line(a);
}

MesiState CoherentCache::state_of(Addr a) const {
  const Line* line = find_line(a);
  return line ? line->state : MesiState::kInvalid;
}

void CoherentCache::handle_cpu(EventPtr ev) {
  auto req = event_cast<MemEvent>(std::move(ev));
  if (req->cmd() != MemCmd::kGetS && req->cmd() != MemCmd::kGetX) {
    throw SimulationError("coherent cache '" + name() +
                          "': only GetS/GetX accepted on cpu port");
  }
  if (line_base(req->addr()) !=
      line_base(req->addr() + (req->size() ? req->size() - 1 : 0))) {
    throw SimulationError("coherent cache '" + name() +
                          "': request crosses line: " + req->describe());
  }
  process_request(std::move(req), /*count_stats=*/true);
}

void CoherentCache::process_request(std::unique_ptr<MemEvent> req,
                                    bool count_stats) {
  const Addr line_addr = line_base(req->addr());
  const bool is_write = req->cmd() == MemCmd::kGetX;
  Line* line = find_line(req->addr());

  if (line != nullptr) {
    const bool write_ok = line->state == MesiState::kModified ||
                          line->state == MesiState::kExclusive;
    if (!is_write || write_ok) {
      if (is_write) line->state = MesiState::kModified;  // E->M is silent
      line->lru = lru_clock_++;
      if (count_stats) hits_->add();
      cpu_link_->send(req->make_response(), hit_latency_);
      return;
    }
    // Write to Shared: upgrade.
  }

  if (count_stats) misses_->add();

  if (auto it = pending_by_line_.find(line_addr);
      it != pending_by_line_.end()) {
    Pending& p = pending_.at(it->second);
    p.wants_write = p.wants_write || is_write;
    p.waiters.push_back(std::move(req));
    return;
  }

  if (pending_.size() >= max_mshrs_) {
    stalled_.push_back(std::move(req));
    return;
  }

  const std::uint64_t id = next_id_++;
  Pending& p = pending_[id];
  p.line_addr = line_addr;
  p.wants_write = is_write;
  p.waiters.push_back(std::move(req));
  pending_by_line_[line_addr] = id;

  if (line != nullptr && is_write) {
    upgrades_->add();
    send_bus_request(CoherenceEvent::Cmd::kUpgrade, line_addr, id);
  } else {
    send_bus_request(is_write ? CoherenceEvent::Cmd::kGetX
                              : CoherenceEvent::Cmd::kGetS,
                     line_addr, id);
  }
}

void CoherentCache::send_bus_request(CoherenceEvent::Cmd cmd, Addr line,
                                     std::uint64_t id) {
  bus_link_->send(
      std::make_unique<CoherenceEvent>(cmd, line, line_size_, id),
      hit_latency_);
}

void CoherentCache::handle_bus(EventPtr ev) {
  if (dynamic_cast<SnoopEvent*>(ev.get()) != nullptr) {
    handle_snoop(event_cast<SnoopEvent>(std::move(ev)));
    return;
  }
  handle_response(event_cast<CoherenceEvent>(std::move(ev)));
}

void CoherentCache::handle_snoop(std::unique_ptr<SnoopEvent> snoop) {
  Line* line = find_line(snoop->line());
  bool had = false;
  bool supplied = false;

  if (line != nullptr) {
    had = true;
    if (line->state == MesiState::kModified) {
      supplied = true;
      supplied_->add();
    }
    if (snoop->kind() == SnoopEvent::Kind::kRead) {
      line->state = MesiState::kShared;
    } else {
      line->state = MesiState::kInvalid;
      invalidations_->add();
    }
  } else if (auto it = writeback_buffer_.find(snoop->line());
             it != writeback_buffer_.end()) {
    // An evicted Modified line still in flight to memory: we are the
    // freshest copy, so supply it (the bus writes it back again).
    had = true;
    supplied = true;
    supplied_->add();
  }

  bus_link_->send(
      std::make_unique<SnoopRespEvent>(snoop->txn(), had, supplied));
}

void CoherentCache::handle_response(std::unique_ptr<CoherenceEvent> resp) {
  if (resp->cmd() == CoherenceEvent::Cmd::kPutMAck) {
    writeback_buffer_.erase(resp->line());
    return;
  }

  auto it = pending_.find(resp->id());
  if (it == pending_.end()) {
    throw SimulationError("coherent cache '" + name() +
                          "': response for unknown request");
  }

  switch (resp->cmd()) {
    case CoherenceEvent::Cmd::kGetSResp:
      install(it->second.line_addr,
              resp->shared() ? MesiState::kShared : MesiState::kExclusive);
      break;
    case CoherenceEvent::Cmd::kGetXResp:
      install(it->second.line_addr, MesiState::kModified);
      break;
    case CoherenceEvent::Cmd::kUpgradeResp: {
      Line* line = find_line(it->second.line_addr);
      if (line == nullptr) {
        // Lost the race: another writer invalidated us while the upgrade
        // sat in the bus queue.  Re-issue as a full GetX.
        upgrade_races_->add();
        send_bus_request(CoherenceEvent::Cmd::kGetX, it->second.line_addr,
                         resp->id());
        return;
      }
      line->state = MesiState::kModified;
      line->lru = lru_clock_++;
      break;
    }
    default:
      throw SimulationError("coherent cache '" + name() +
                            "': unexpected bus response");
  }

  Pending done = std::move(it->second);
  pending_.erase(it);
  pending_by_line_.erase(done.line_addr);
  // Complete the waiters the fill satisfies directly (they already
  // counted their miss); a store that was granted only Shared re-enters
  // process_request and issues its upgrade.
  for (auto& w : done.waiters) {
    Line* line = find_line(w->addr());
    const bool is_write = w->cmd() == MemCmd::kGetX;
    const bool write_ok =
        line != nullptr && (line->state == MesiState::kModified ||
                            line->state == MesiState::kExclusive);
    if (line != nullptr && (!is_write || write_ok)) {
      if (is_write) line->state = MesiState::kModified;
      line->lru = lru_clock_++;
      cpu_link_->send(w->make_response(), hit_latency_);
    } else {
      process_request(std::move(w), /*count_stats=*/false);
    }
  }

  while (!stalled_.empty() && pending_.size() < max_mshrs_) {
    auto next = std::move(stalled_.front());
    stalled_.pop_front();
    process_request(std::move(next), /*count_stats=*/false);
  }
}

void CoherentCache::install(Addr line_addr, MesiState state) {
  auto& set = sets_[set_index(line_addr)];
  Line* victim = nullptr;
  for (auto& line : set) {
    if (line.state == MesiState::kInvalid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru < victim->lru) victim = &line;
  }
  if (victim->state == MesiState::kModified) {
    const Addr victim_addr =
        (victim->tag * num_sets_ + set_index(line_addr)) *
        static_cast<Addr>(line_size_);
    writebacks_->add();
    const std::uint64_t id = next_id_++;
    writeback_buffer_[victim_addr] = id;
    send_bus_request(CoherenceEvent::Cmd::kPutM, victim_addr, id);
  }
  victim->tag = tag_of(line_addr);
  victim->state = state;
  victim->lru = lru_clock_++;
}

// ---------------------------------------------------------------------
// Checkpoint hooks
// ---------------------------------------------------------------------

void SnoopBus::Txn::ckpt_io(ckpt::Serializer& s) {
  s & src_port & cmd & line & size & req_id & txn_id & pending_snoops &
      shared & intervention;
}

void SnoopBus::serialize_state(ckpt::Serializer& s) {
  s & queue_ & busy_ & active_ & next_txn_id_;
}

void CoherentCache::Line::ckpt_io(ckpt::Serializer& s) {
  s & tag & state & lru;
}

void CoherentCache::Pending::ckpt_io(ckpt::Serializer& s) {
  s & line_addr & wants_write & waiters;
}

void CoherentCache::serialize_state(ckpt::Serializer& s) {
  s & sets_ & lru_clock_ & pending_ & pending_by_line_ & stalled_ &
      next_id_ & writeback_buffer_;
}

}  // namespace sst::mem
