// Snooping MESI coherence: CoherentCache + SnoopBus.
//
// A bus-based multiprocessor memory system (the memHierarchy-style
// substrate for simulating shared-memory nodes):
//
//   core0 -- CoherentCache0 --+
//   core1 -- CoherentCache1 --+-- SnoopBus -- MemoryController
//   ...                       |
//
// The SnoopBus serializes coherence transactions (an atomic bus): each
// GetS / GetX / Upgrade is broadcast to every other cache, which answers
// with a snoop response (line state + data supply if Modified).  The bus
// then sources data from the owning cache (cache-to-cache intervention,
// with a memory write-back so memory stays clean) or from memory, and
// completes the transaction with the MESI sharing information the
// requester needs to pick its install state.
//
// Protocol summary (standard MESI):
//   read  miss -> GetS   -> install E (no sharers) or S (sharers exist)
//   write miss -> GetX   -> install M, all others invalidate
//   write to S -> Upgrade-> M after others invalidate; if an intervening
//                 GetX invalidated us first, the cache re-issues as GetX
//   write to E -> silent E->M
//   snoop Rd   : M -> supply data, ->S ; E->S ; S stays
//   snoop RdX  : M -> supply data, ->I ; E/S -> I
//   M eviction -> PutM through the bus to memory
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/component.h"
#include "mem/mem_event.h"

namespace sst::mem {

enum class MesiState : std::uint8_t { kInvalid, kShared, kExclusive,
                                      kModified };

[[nodiscard]] inline const char* to_string(MesiState s) {
  switch (s) {
    case MesiState::kInvalid: return "I";
    case MesiState::kShared: return "S";
    case MesiState::kExclusive: return "E";
    case MesiState::kModified: return "M";
  }
  return "?";
}

/// Bus -> cache snoop probe.
class SnoopEvent final : public Event {
 public:
  enum class Kind : std::uint8_t { kRead, kReadExclusive, kInvalidate };

  SnoopEvent(Kind kind, Addr line, std::uint64_t txn)
      : kind_(kind), line_(line), txn_(txn) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] Addr line() const { return line_; }
  [[nodiscard]] std::uint64_t txn() const { return txn_; }

  [[nodiscard]] const char* ckpt_type() const override {
    return "mem.Snoop";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  Kind kind_;
  Addr line_;
  std::uint64_t txn_;
};

/// Cache -> bus snoop answer.
class SnoopRespEvent final : public Event {
 public:
  SnoopRespEvent(std::uint64_t txn, bool had_line, bool supplied_data)
      : txn_(txn), had_line_(had_line), supplied_data_(supplied_data) {}

  [[nodiscard]] std::uint64_t txn() const { return txn_; }
  [[nodiscard]] bool had_line() const { return had_line_; }
  [[nodiscard]] bool supplied_data() const { return supplied_data_; }

  [[nodiscard]] const char* ckpt_type() const override {
    return "mem.SnoopResp";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  std::uint64_t txn_;
  bool had_line_;
  bool supplied_data_;
};

/// Coherence transaction request/response between caches and the bus.
/// (Kept separate from MemEvent so the plain hierarchy stays untouched.)
class CoherenceEvent final : public Event {
 public:
  enum class Cmd : std::uint8_t {
    kGetS,        // read miss
    kGetX,        // write miss
    kUpgrade,     // S -> M permission
    kPutM,        // modified write-back
    kGetSResp,
    kGetXResp,
    kUpgradeResp,
    kPutMAck,     // write-back reached the bus (clears the WB buffer)
  };

  CoherenceEvent(Cmd cmd, Addr line, std::uint32_t size, std::uint64_t id)
      : cmd_(cmd), line_(line), size_(size), id_(id) {}

  [[nodiscard]] Cmd cmd() const { return cmd_; }
  [[nodiscard]] Addr line() const { return line_; }
  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Response only: other caches still hold the line (S vs E install).
  [[nodiscard]] bool shared() const { return shared_; }
  void set_shared(bool s) { shared_ = s; }
  /// Response only: data came from another cache, not memory.
  [[nodiscard]] bool intervention() const { return intervention_; }
  void set_intervention(bool i) { intervention_ = i; }

  [[nodiscard]] const char* ckpt_type() const override {
    return "mem.Coherence";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  Cmd cmd_;
  Addr line_;
  std::uint32_t size_;
  std::uint64_t id_;
  bool shared_ = false;
  bool intervention_ = false;
};

/// Atomic snooping bus.
///
/// Ports:
///   "cache0" .. "cache<N-1>" — coherent caches
///   "mem"                    — memory controller (MemEvent protocol)
///
/// Params:
///   num_caches   cache port count              (required)
///   occupancy    per-transaction bus time      (default "6ns")
class SnoopBus final : public Component {
 public:
  explicit SnoopBus(Params& params);

  [[nodiscard]] std::uint64_t transactions() const {
    return transactions_->count();
  }
  [[nodiscard]] std::uint64_t interventions() const {
    return interventions_->count();
  }

  void serialize_state(ckpt::Serializer& s) override;

 private:
  struct Txn {
    std::uint32_t src_port;
    CoherenceEvent::Cmd cmd;
    Addr line;
    std::uint32_t size;
    std::uint64_t req_id;       // requester's id, echoed in the response
    std::uint64_t txn_id;
    std::uint32_t pending_snoops = 0;
    bool shared = false;
    bool intervention = false;

    void ckpt_io(ckpt::Serializer& s);
  };

  void handle_cache(std::uint32_t port, EventPtr ev);
  void handle_mem(EventPtr ev);
  void start_next();
  void finish_txn();

  std::vector<Link*> cache_links_;
  Link* mem_link_;
  SimTime occupancy_;

  std::deque<Txn> queue_;
  bool busy_ = false;
  Txn active_{};
  std::uint64_t next_txn_id_ = 1;

  Counter* transactions_;
  Counter* interventions_;
  Counter* invalidation_txns_;
  Accumulator* queue_depth_;
};

/// MESI-coherent L1 cache.
///
/// Ports:
///   "cpu" — core side (MemEvent protocol)
///   "bus" — SnoopBus side (CoherenceEvent / SnoopEvent protocol)
///
/// Params: size (required), assoc (4), line_size (64),
///         hit_latency ("1ns"), mshrs (8)
class CoherentCache final : public Component {
 public:
  explicit CoherentCache(Params& params);

  /// MESI state of the line containing `a` (introspection for tests).
  [[nodiscard]] MesiState state_of(Addr a) const;

  [[nodiscard]] std::uint64_t hits() const { return hits_->count(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_->count(); }
  [[nodiscard]] std::uint64_t invalidations_received() const {
    return invalidations_->count();
  }
  [[nodiscard]] std::uint64_t interventions_supplied() const {
    return supplied_->count();
  }
  [[nodiscard]] std::uint64_t upgrade_races() const {
    return upgrade_races_->count();
  }

  void serialize_state(ckpt::Serializer& s) override;

 private:
  struct Line {
    std::uint64_t tag = 0;
    MesiState state = MesiState::kInvalid;
    std::uint64_t lru = 0;

    void ckpt_io(ckpt::Serializer& s);
  };

  struct Pending {
    Addr line_addr = 0;
    bool wants_write = false;  // at least one waiter is a store
    std::vector<std::unique_ptr<MemEvent>> waiters;

    void ckpt_io(ckpt::Serializer& s);
  };

  void handle_cpu(EventPtr ev);
  void handle_bus(EventPtr ev);
  void handle_snoop(std::unique_ptr<SnoopEvent> snoop);
  void handle_response(std::unique_ptr<CoherenceEvent> resp);
  void process_request(std::unique_ptr<MemEvent> req,
                       bool count_stats);
  void send_bus_request(CoherenceEvent::Cmd cmd, Addr line,
                        std::uint64_t id);
  void install(Addr line_addr, MesiState state);

  [[nodiscard]] Addr line_base(Addr a) const {
    return a & ~static_cast<Addr>(line_size_ - 1);
  }
  [[nodiscard]] std::uint32_t set_index(Addr a) const {
    return static_cast<std::uint32_t>((a / line_size_) % num_sets_);
  }
  [[nodiscard]] std::uint64_t tag_of(Addr a) const {
    return a / line_size_ / num_sets_;
  }
  [[nodiscard]] Line* find_line(Addr a);
  [[nodiscard]] const Line* find_line(Addr a) const;

  Link* cpu_link_;
  Link* bus_link_;

  std::uint32_t line_size_;
  std::uint32_t assoc_;
  std::uint32_t num_sets_;
  SimTime hit_latency_;
  std::uint32_t max_mshrs_;

  std::vector<std::vector<Line>> sets_;
  std::uint64_t lru_clock_ = 1;
  std::map<std::uint64_t, Pending> pending_;       // id -> waiters
  std::map<Addr, std::uint64_t> pending_by_line_;
  std::deque<std::unique_ptr<MemEvent>> stalled_;
  std::uint64_t next_id_ = 1;
  // Evicted Modified lines whose PutM has not yet reached the bus; they
  // must still answer snoops or a racing reader would get stale memory.
  std::map<Addr, std::uint64_t> writeback_buffer_;  // line -> putm id

  Counter* hits_;
  Counter* misses_;
  Counter* invalidations_;
  Counter* supplied_;
  Counter* upgrades_;
  Counter* upgrade_races_;
  Counter* writebacks_;
};

}  // namespace sst::mem
