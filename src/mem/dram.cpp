#include "mem/dram.h"

#include <algorithm>
#include <cmath>

#include "ckpt/serializer.h"

namespace sst::mem {

SimTime DramTimingParams::burst_time(std::uint32_t bytes) const {
  // bytes / (GB/s) = ns; times 1000 for ps.
  const double ps =
      static_cast<double>(bytes) / peak_bandwidth_gbs * 1000.0;
  return std::max<SimTime>(1, static_cast<SimTime>(std::llround(ps)));
}

DramTimingParams DramTimingParams::ddr2_800() {
  DramTimingParams p;
  p.name = "DDR2-800";
  p.num_banks = 8;
  p.row_bytes = 8192;
  p.peak_bandwidth_gbs = 6.4;  // 800 MT/s x 8 B
  p.t_cl = 12'500;             // CL5 @ 2.5ns
  p.t_rcd = 12'500;
  p.t_rp = 12'500;
  p.t_ras = 45'000;
  p.energy_per_access_nj = 25.0;
  p.background_power_w = 1.1;
  p.cost_per_gb_usd = 4.0;
  return p;
}

DramTimingParams DramTimingParams::ddr3_1333() {
  DramTimingParams p;
  p.name = "DDR3-1333";
  p.num_banks = 8;
  p.row_bytes = 8192;
  p.peak_bandwidth_gbs = 10.667;  // 1333 MT/s x 8 B
  p.t_cl = 13'500;                // CL9 @ 1.5ns
  p.t_rcd = 13'500;
  p.t_rp = 13'500;
  p.t_ras = 36'000;
  p.energy_per_access_nj = 15.0;
  p.background_power_w = 0.9;
  p.cost_per_gb_usd = 6.0;
  return p;
}

DramTimingParams DramTimingParams::gddr5() {
  DramTimingParams p;
  p.name = "GDDR5";
  p.num_banks = 16;
  p.row_bytes = 2048;
  p.peak_bandwidth_gbs = 32.0;  // 4 Gb/s/pin x 64-bit effective channel
  p.t_cl = 15'000;
  p.t_rcd = 14'000;
  p.t_rp = 14'000;
  p.t_ras = 33'000;
  p.energy_per_access_nj = 22.0;  // higher I/O energy than DDR3
  p.background_power_w = 2.8;     // high static power: the paper's tradeoff
  p.cost_per_gb_usd = 22.0;       // premium graphics memory
  return p;
}

DramTimingParams DramTimingParams::preset(std::string_view name) {
  if (name == "DDR2" || name == "DDR2-800" || name == "ddr2") {
    return ddr2_800();
  }
  if (name == "DDR3" || name == "DDR3-1333" || name == "ddr3") {
    return ddr3_1333();
  }
  if (name == "GDDR5" || name == "gddr5") {
    return gddr5();
  }
  throw ConfigError("unknown DRAM preset '" + std::string(name) +
                    "' (known: DDR2, DDR3, GDDR5)");
}

// ---------------------------------------------------------------------
// SimpleBackend
// ---------------------------------------------------------------------

SimpleBackend::SimpleBackend(SimTime latency, double bandwidth_gbs)
    : latency_(latency), bytes_per_ps_(bandwidth_gbs / 1000.0) {
  if (bandwidth_gbs <= 0) {
    throw ConfigError("SimpleBackend: bandwidth must be > 0");
  }
}

void SimpleBackend::push(std::uint64_t token, Addr /*addr*/,
                         bool /*is_write*/, std::uint32_t bytes,
                         SimTime now) {
  const auto burst = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_ps_));
  const SimTime start = std::max(now, bus_free_);
  bus_free_ = start + burst;
  decided_.push_back({token, start + latency_ + burst});
}

std::vector<MemCompletion> SimpleBackend::advance(SimTime /*now*/) {
  std::vector<MemCompletion> out;
  out.swap(decided_);
  return out;
}

// ---------------------------------------------------------------------
// DramBackend
// ---------------------------------------------------------------------

DramBackend::DramBackend(DramTimingParams params)
    : params_(std::move(params)), banks_(params_.num_banks) {
  if (params_.num_banks == 0) throw ConfigError("DRAM: need >= 1 bank");
  if (params_.row_bytes == 0) throw ConfigError("DRAM: row_bytes must be > 0");
}

std::uint32_t DramBackend::bank_of(Addr addr) const {
  // Skewed row interleaving: consecutive rows rotate across banks, and
  // the skew terms break power-of-two strides (cache capacity, array
  // pitch) that would otherwise alias competing streams into one bank —
  // the same trick real controllers play with XOR bank hashing.  Lines
  // within a row share a bank, so sequential streams still get row hits.
  const std::uint64_t row = addr / params_.row_bytes;
  const std::uint64_t b = params_.num_banks;
  // Two skew terms: a single-level skew still aliases at stride banks^2.
  return static_cast<std::uint32_t>((row + row / b + row / (b * b)) % b);
}

std::uint64_t DramBackend::row_of(Addr addr) const {
  return addr / (params_.row_bytes * params_.num_banks);
}

void DramBackend::push(std::uint64_t token, Addr addr, bool /*is_write*/,
                       std::uint32_t bytes, SimTime now) {
  queue_.push_back({token, addr, bytes, now, next_seq_++});
}

SimTime DramBackend::issue_time(const Pending& p) const {
  const Bank& bank = banks_[bank_of(p.addr)];
  SimTime t = std::max(p.arrival, bank.ready);
  if (bank.open_row != row_of(p.addr)) {
    // Must wait out tRAS before the precharge can begin.
    t = std::max(t, bank.ras_done);
  }
  return t;
}

SimTime DramBackend::issue(const Pending& p) {
  Bank& bank = banks_[bank_of(p.addr)];
  const std::uint64_t row = row_of(p.addr);
  const SimTime start = issue_time(p);

  const SimTime burst = params_.burst_time(p.bytes);
  SimTime cas_issue;
  if (bank.open_row == row) {
    // Row hit: the CAS issues immediately; tCL is pure latency and CAS
    // commands pipeline at the burst (tCCD) rate.
    ++row_hits_;
    cas_issue = start;
  } else {
    // Row miss: precharge + activate, then the CAS.
    ++row_misses_;
    cas_issue = start + params_.t_rp + params_.t_rcd;
    bank.open_row = row;
    bank.ras_done = cas_issue + params_.t_ras;
  }
  SimTime data_start = cas_issue + params_.t_cl;

  // Aggregate data-bus throughput: each access reserves one burst slot
  // counted from issue, so a late (row-miss) access does not head-of-line
  // block other banks' data.
  data_bus_free_ = std::max(data_bus_free_, start) + burst;
  data_start = std::max(data_start, data_bus_free_ - burst);
  // The bank can accept its next CAS one burst interval after this one
  // (data follows t_cl behind, back-to-back on the pins).
  bank.ready = std::max(cas_issue + burst, data_start - params_.t_cl);
  return data_start + burst;
}

std::vector<MemCompletion> DramBackend::advance(SimTime now) {
  std::vector<MemCompletion> out;
  for (;;) {
    // FR-FCFS: among requests issuable by `now`, row hits beat misses and
    // age breaks ties; if nothing is issuable yet, stop.
    std::size_t best = queue_.size();
    SimTime best_issue = kTimeNever;
    bool best_hit = false;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Pending& p = queue_[i];
      const SimTime t = issue_time(p);
      if (t > now) continue;
      const bool hit =
          banks_[bank_of(p.addr)].open_row == row_of(p.addr);
      const bool better =
          best == queue_.size() || (hit && !best_hit) ||
          (hit == best_hit &&
           (t < best_issue ||
            (t == best_issue && p.seq < queue_[best].seq)));
      if (better) {
        best = i;
        best_issue = t;
        best_hit = hit;
      }
    }
    if (best == queue_.size()) break;
    const Pending chosen = queue_[best];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    out.push_back({chosen.token, issue(chosen)});
  }
  return out;
}

SimTime DramBackend::next_action() const {
  SimTime t = kTimeNever;
  for (const Pending& p : queue_) {
    t = std::min(t, issue_time(p));
  }
  return t;
}

// ---------------------------------------------------------------------
// Checkpoint hooks
// ---------------------------------------------------------------------

void MemCompletion::ckpt_io(ckpt::Serializer& s) { s & token & time; }

void SimpleBackend::serialize(ckpt::Serializer& s) {
  s & bus_free_ & decided_;
}

void DramBackend::Bank::ckpt_io(ckpt::Serializer& s) {
  s & open_row & ready & ras_done;
}

void DramBackend::Pending::ckpt_io(ckpt::Serializer& s) {
  s & token & addr & bytes & arrival & seq;
}

void DramBackend::serialize(ckpt::Serializer& s) {
  s & banks_ & data_bus_free_ & queue_ & next_seq_ & row_hits_ & row_misses_;
}

}  // namespace sst::mem
