#include "mem/bus.h"

#include <algorithm>
#include <utility>

#include "ckpt/serializer.h"

namespace sst::mem {

Bus::Bus(Params& params) {
  const auto n = params.required<std::uint32_t>("num_ports");
  if (n == 0) throw ConfigError("bus '" + name() + "': num_ports must be >= 1");
  const double bw =
      params.find<UnitAlgebra>("bandwidth", UnitAlgebra("25.6GB/s"))
          .to_bytes_per_second();
  bytes_per_ps_ = bw / 1e12;
  header_ = params.find_time("header", "1ns");

  up_links_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    up_links_.push_back(configure_link(
        "up" + std::to_string(i),
        [this, i](EventPtr ev) { handle_up(i, std::move(ev)); },
        /*optional=*/true));
  }
  down_link_ = configure_link(
      "down", [this](EventPtr ev) { handle_down(std::move(ev)); });

  transactions_ = stat_counter("transactions");
  queue_delay_ = stat_accumulator("queue_delay_ps");
}

SimTime Bus::occupy(std::uint32_t bytes) {
  const auto transfer = std::max<SimTime>(
      1, header_ + static_cast<SimTime>(static_cast<double>(bytes) /
                                        bytes_per_ps_));
  const SimTime start = std::max(now(), busy_until_);
  busy_until_ = start + transfer;
  const SimTime extra = busy_until_ - now();
  queue_delay_->add(static_cast<double>(start - now()));
  transactions_->add();
  return extra;
}

void Bus::handle_up(std::uint32_t port, EventPtr ev) {
  auto req = event_cast<MemEvent>(std::move(ev));
  if (!is_request(req->cmd())) {
    throw SimulationError("bus '" + name() + "': response on up port");
  }
  req->set_bus_src(port);
  const SimTime extra = occupy(req->size());
  down_link_->send(std::move(req), extra);
}

void Bus::handle_down(EventPtr ev) {
  auto resp = event_cast<MemEvent>(std::move(ev));
  if (!is_response(resp->cmd())) {
    throw SimulationError("bus '" + name() + "': request on down port");
  }
  const std::uint32_t port = resp->bus_src();
  if (port >= up_links_.size()) {
    throw SimulationError("bus '" + name() + "': bad bus_src routing tag");
  }
  if (!up_links_[port]->connected()) {
    throw SimulationError("bus '" + name() + "': response to unconnected port");
  }
  const SimTime extra = occupy(resp->size());
  up_links_[port]->send(std::move(resp), extra);
}

void Bus::serialize_state(ckpt::Serializer& s) { s & busy_until_; }

}  // namespace sst::mem
