// Set-associative, write-back, write-allocate, non-blocking cache.
//
// Non-blocking behaviour is the load-bearing feature for the design-space
// experiments: misses allocate MSHRs and overlap, so wide cores and
// high-bandwidth memories actually get exercised (a blocking cache would
// flatten every sweep).  When the MSHR table fills, further misses queue
// in a stall buffer and replay as MSHRs retire.
//
// An optional next-N-line prefetcher rides on the miss stream: each
// demand miss also fetches the following `prefetch_degree` lines (when
// MSHR budget allows), and prefetched lines are tagged so usefulness is
// measurable.
//
// Ports:
//   "cpu" — upstream (requests arrive, responses leave)
//   "mem" — downstream (line fills / writebacks)
//
// Params:
//   size             total capacity, e.g. "64KiB"      (required)
//   assoc            ways per set                       (default 8)
//   line_size        bytes per line                     (default 64)
//   hit_latency      lookup/response latency            (default "2ns")
//   mshrs            outstanding line misses            (default 8)
//   prefetch         "none" | "nextline"                (default "none")
//   prefetch_degree  lines fetched ahead per miss       (default 2)
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/component.h"
#include "mem/mem_event.h"

namespace sst::mem {

class Cache final : public Component {
 public:
  explicit Cache(Params& params);

  // Introspection for tests.
  [[nodiscard]] std::uint64_t hits() const { return hits_->count(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_->count(); }
  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }
  [[nodiscard]] std::uint32_t assoc() const { return assoc_; }
  [[nodiscard]] std::uint32_t line_size() const { return line_size_; }

  void serialize_state(ckpt::Serializer& s) override;

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  // brought in by the prefetcher, untouched
    std::uint64_t lru = 0;    // higher = more recently used

    void ckpt_io(ckpt::Serializer& s);
  };

  struct Mshr {
    Addr line_addr = 0;
    bool prefetch = false;  // no waiters expected
    std::vector<std::unique_ptr<MemEvent>> waiters;

    void ckpt_io(ckpt::Serializer& s);
  };

  void handle_cpu(EventPtr ev);
  void handle_mem(EventPtr ev);
  void process_request(std::unique_ptr<MemEvent> req,
                       bool count_stats);

  [[nodiscard]] Addr line_base(Addr a) const {
    return a & ~static_cast<Addr>(line_size_ - 1);
  }
  [[nodiscard]] std::uint32_t set_index(Addr a) const {
    return static_cast<std::uint32_t>((a / line_size_) % num_sets_);
  }
  [[nodiscard]] std::uint64_t tag_of(Addr a) const {
    return a / line_size_ / num_sets_;
  }

  /// Looks up the line; returns way index or -1.
  [[nodiscard]] int lookup(Addr a) const;
  /// Victim selection in the set of `a` (invalid way first, else LRU).
  [[nodiscard]] int choose_victim(std::uint32_t set) const;
  void touch(std::uint32_t set, int way);
  void install_line(Addr line_addr, bool dirty, bool prefetched);
  void respond(const MemEvent& req);
  /// Issues next-line prefetches following a demand miss at `line_addr`.
  void maybe_prefetch(Addr line_addr);

  Link* cpu_link_;
  Link* mem_link_;

  std::uint32_t line_size_;
  std::uint32_t assoc_;
  std::uint32_t num_sets_;
  SimTime hit_latency_;
  std::uint32_t max_mshrs_;
  bool prefetch_enabled_;
  std::uint32_t prefetch_degree_;

  std::vector<std::vector<Line>> sets_;
  std::uint64_t lru_clock_ = 1;
  std::map<std::uint64_t, Mshr> mshrs_;          // key: outgoing req_id
  std::map<Addr, std::uint64_t> mshr_by_line_;   // line -> outgoing req_id
  std::deque<std::unique_ptr<MemEvent>> stalled_;
  std::uint64_t next_req_id_ = 1;

  Counter* hits_;
  Counter* misses_;
  Counter* writebacks_;
  Counter* evictions_;
  Counter* mshr_merges_;
  Counter* stalls_;
  Counter* prefetches_;
  Counter* prefetch_hits_;

 public:
  [[nodiscard]] std::uint64_t prefetches_issued() const {
    return prefetches_->count();
  }
  [[nodiscard]] std::uint64_t prefetch_hits() const {
    return prefetch_hits_->count();
  }
};

}  // namespace sst::mem
