#include "mem/mem_lib.h"

#include "core/factory.h"

namespace sst::mem {

void register_library() {
  static const bool once = [] {
    Factory& f = Factory::instance();
    f.register_component(
        "mem.Cache",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<Cache>(name, p);
        });
    f.register_component(
        "mem.Bus",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<Bus>(name, p);
        });
    f.register_component(
        "mem.CoherentCache",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<CoherentCache>(name, p);
        });
    f.register_component(
        "mem.SnoopBus",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<SnoopBus>(name, p);
        });
    f.register_component(
        "mem.MemoryController",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<MemoryController>(name, p);
        });
    return true;
  }();
  (void)once;
}

}  // namespace sst::mem
