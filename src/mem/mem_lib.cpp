#include "mem/mem_lib.h"

#include "core/factory.h"
#include "ckpt/event_registry.h"
#include "ckpt/serializer.h"

namespace sst::mem {

void MemEvent::ckpt_fields(ckpt::Serializer& s) {
  s & cmd_ & addr_ & size_ & req_id_ & bus_src_ & virt_ & asid_;
}

void SnoopEvent::ckpt_fields(ckpt::Serializer& s) {
  s & kind_ & line_ & txn_;
}

void SnoopRespEvent::ckpt_fields(ckpt::Serializer& s) {
  s & txn_ & had_line_ & supplied_data_;
}

void CoherenceEvent::ckpt_fields(ckpt::Serializer& s) {
  s & cmd_ & line_ & size_ & id_ & shared_ & intervention_;
}

namespace {

void register_ckpt_events() {
  auto& r = ckpt::EventRegistry::instance();
  r.register_type("mem.MemEvent", [] {
    return std::make_unique<MemEvent>(MemCmd::kGetS, 0, 0, 0);
  });
  r.register_type("mem.Snoop", [] {
    return std::make_unique<SnoopEvent>(SnoopEvent::Kind::kRead, 0, 0);
  });
  r.register_type("mem.SnoopResp", [] {
    return std::make_unique<SnoopRespEvent>(0, false, false);
  });
  r.register_type("mem.Coherence", [] {
    return std::make_unique<CoherenceEvent>(CoherenceEvent::Cmd::kGetS, 0, 0,
                                            0);
  });
  MemoryController::register_ckpt_events();
}

}  // namespace

void register_library() {
  static const bool once = [] {
    Factory& f = Factory::instance();
    f.register_component(
        "mem.Cache",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<Cache>(name, p);
        });
    f.register_component(
        "mem.Bus",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<Bus>(name, p);
        });
    f.register_component(
        "mem.CoherentCache",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<CoherentCache>(name, p);
        });
    f.register_component(
        "mem.SnoopBus",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<SnoopBus>(name, p);
        });
    f.register_component(
        "mem.MemoryController",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          return sim.add_component<MemoryController>(name, p);
        });
    f.describe_params("mem.Cache", {
        {"size", "total capacity, e.g. \"32KiB\"", ""},
        {"line_size", "cache line size in bytes (power of two)", "64"},
        {"assoc", "set associativity", "8"},
        {"hit_latency", "hit latency (period or frequency)", "2ns"},
        {"mshrs", "outstanding-miss registers", "8"},
        {"prefetch", "prefetch policy: none | nextline", "none"},
        {"prefetch_degree", "lines fetched ahead per miss", "2"},
    });
    f.describe_params("mem.Bus", {
        {"num_ports", "number of attached cpu-side ports", ""},
        {"bandwidth", "shared bus bandwidth", "25.6GB/s"},
        {"header", "per-transaction header time", "1ns"},
    });
    f.describe_params("mem.CoherentCache", {
        {"size", "total capacity, e.g. \"64KiB\"", ""},
        {"num_caches", "peer caches on the snoop bus", ""},
        {"line_size", "cache line size in bytes (power of two)", "64"},
        {"assoc", "set associativity", "4"},
        {"hit_latency", "hit latency (period or frequency)", "1ns"},
        {"mshrs", "outstanding-miss registers", "8"},
    });
    f.describe_params("mem.SnoopBus", {
        {"num_caches", "coherent caches arbitrating for the bus", ""},
        {"occupancy", "bus occupancy per snoop transaction", "6ns"},
    });
    f.describe_params("mem.MemoryController", {
        {"backend", "timing backend: dram | simple", "dram"},
        {"preset", "dram timing preset: DDR2 | DDR3 | GDDR5", "DDR3"},
        {"latency", "simple-backend fixed latency", "60ns"},
        {"bandwidth_gbs", "simple-backend bandwidth in GB/s", "10.667"},
        {"ber", "bit error rate fed to the ECC model", "0"},
        {"ecc", "error correction: secded | none", "secded"},
        {"fatal_uncorrected", "abort on uncorrectable errors", "false"},
    });
    register_ckpt_events();
    return true;
  }();
  (void)once;
}

}  // namespace sst::mem
