// Shared memory bus: N upstream ports funnel into one downstream port with
// serialized occupancy (header time + bytes / bandwidth).  This is what
// makes "cores per node" sweeps show memory-bandwidth contention.
//
// Ports:
//   "up0" .. "up<N-1>" — upstream requesters (caches / CPUs)
//   "down"             — downstream target (next cache level / controller)
//
// Params:
//   num_ports   upstream port count                 (required)
//   bandwidth   e.g. "25.6GB/s"                     (default "25.6GB/s")
//   header      per-transaction arbitration time    (default "1ns")
#pragma once

#include <cstdint>
#include <vector>

#include "core/component.h"
#include "mem/mem_event.h"

namespace sst::mem {

class Bus final : public Component {
 public:
  explicit Bus(Params& params);

  [[nodiscard]] std::uint32_t num_ports() const {
    return static_cast<std::uint32_t>(up_links_.size());
  }

  void serialize_state(ckpt::Serializer& s) override;

 private:
  void handle_up(std::uint32_t port, EventPtr ev);
  void handle_down(EventPtr ev);
  /// Serializes a transfer on the shared bus; returns the extra delay to
  /// apply on top of link latency.
  [[nodiscard]] SimTime occupy(std::uint32_t bytes);

  std::vector<Link*> up_links_;
  Link* down_link_;
  double bytes_per_ps_;
  SimTime header_;
  SimTime busy_until_ = 0;

  Counter* transactions_;
  Accumulator* queue_delay_;
};

}  // namespace sst::mem
