#include "mem/memory_controller.h"

#include <utility>

#include "ckpt/event_registry.h"
#include "ckpt/serializer.h"

namespace sst::mem {

MemoryController::MemoryController(Params& params) {
  const std::string kind = params.find("backend", "dram");
  if (kind == "dram") {
    const std::string preset = params.find("preset", "DDR3");
    backend_ = std::make_unique<DramBackend>(DramTimingParams::preset(preset));
  } else if (kind == "simple") {
    const SimTime latency = params.find_time("latency", "60ns");
    const double bw = params.find<double>("bandwidth_gbs", 10.667);
    backend_ = std::make_unique<SimpleBackend>(latency, bw);
  } else {
    throw ConfigError("memory controller '" + name() +
                      "': unknown backend '" + kind +
                      "' (known: dram, simple)");
  }

  const double ber = params.find<double>("ber", 0.0);
  const std::string ecc = params.find("ecc", "secded");
  if (ecc != "secded" && ecc != "none") {
    throw ConfigError("memory controller '" + name() + "': unknown ecc '" +
                      ecc + "' (known: secded, none)");
  }
  ecc_model_ = fault::SecdedModel(ber, /*data_bits=*/64,
                                  /*secded=*/ecc == "secded");
  fatal_uncorrected_ = params.find<bool>("fatal_uncorrected", false);

  cpu_link_ = configure_link(
      "cpu", [this](EventPtr ev) { handle_cpu(std::move(ev)); });
  self_link_ = configure_self_link(
      "complete", 0, [this](EventPtr ev) { handle_complete(std::move(ev)); });

  reads_ = stat_counter("reads");
  writes_ = stat_counter("writes");
  bytes_ = stat_counter("bytes");
  access_latency_ = stat_accumulator("access_latency_ps");
  row_hits_ = stat_counter("row_hits");
  row_misses_ = stat_counter("row_misses");
  ecc_corrected_ = stat_counter("ecc_corrected");
  ecc_uncorrected_ = stat_counter("ecc_uncorrected");
  silent_errors_ = stat_counter("silent_errors");
}

void MemoryController::sample_read_faults(std::uint32_t size) {
  // One SECDED word per 8 data bytes (partial words still occupy one).
  const std::uint32_t words = (size + 7) / 8;
  for (std::uint32_t w = 0; w < words; ++w) {
    switch (ecc_model_.sample(rng())) {
      case fault::EccOutcome::kClean:
        break;
      case fault::EccOutcome::kCorrected:
        ecc_corrected_->add();
        break;
      case fault::EccOutcome::kUncorrected:
        ecc_uncorrected_->add();
        if (fatal_uncorrected_) {
          throw SimulationError("memctrl '" + name() +
                                "': uncorrectable ECC error");
        }
        break;
      case fault::EccOutcome::kSilent:
        silent_errors_->add();
        break;
    }
  }
}

void MemoryController::handle_cpu(EventPtr ev) {
  auto req = event_cast<MemEvent>(std::move(ev));
  if (!is_request(req->cmd())) {
    throw SimulationError("memctrl '" + name() + "': response on cpu port");
  }
  const bool is_write =
      req->cmd() == MemCmd::kGetX || req->cmd() == MemCmd::kPutM;
  if (is_write) {
    writes_->add();
  } else {
    reads_->add();
    if (ecc_model_.enabled()) sample_read_faults(req->size());
  }
  bytes_->add(req->size());

  const std::uint64_t token = next_token_++;
  awaiting_.emplace(token, expects_response(req->cmd()) ? req->make_response()
                                                        : nullptr);
  arrival_.emplace(token, now());
  backend_->push(token, req->addr(), is_write, req->size(), now());
  pump();
}

void MemoryController::pump() {
  for (const MemCompletion& c : backend_->advance(now())) {
    auto it = awaiting_.find(c.token);
    if (it == awaiting_.end()) {
      throw SimulationError("memctrl '" + name() +
                            "': backend completed unknown token");
    }
    if (c.time < now()) {
      throw SimulationError("memctrl '" + name() +
                            "': backend completion in the past");
    }
    access_latency_->add(static_cast<double>(c.time - arrival_.at(c.token)));
    arrival_.erase(c.token);
    EventPtr resp = std::move(it->second);
    awaiting_.erase(it);
    if (resp) {
      // Hold the response until the data is on the bus.
      self_link_->send(std::make_unique<CompletionEvent>(std::move(resp)),
                       c.time - now());
    }
  }
  // Arm a wakeup for the backend's next decision point.
  const SimTime na = backend_->next_action();
  if (na != kTimeNever && na > now() &&
      (wake_armed_for_ == kTimeNever || na < wake_armed_for_ ||
       wake_armed_for_ <= now())) {
    wake_armed_for_ = na;
    self_link_->send(std::make_unique<CompletionEvent>(nullptr),
                     na - now());
  }
}

void MemoryController::handle_complete(EventPtr ev) {
  auto completion = event_cast<CompletionEvent>(std::move(ev));
  if (completion->is_wakeup()) {
    if (wake_armed_for_ == now()) wake_armed_for_ = kTimeNever;
    pump();
    return;
  }
  cpu_link_->send(completion->take_response());
}

void MemoryController::finish() {
  if (const DramBackend* d = dram()) {
    row_hits_->add(d->row_hits());
    row_misses_->add(d->row_misses());
  }
}

void MemoryController::CompletionEvent::ckpt_fields(ckpt::Serializer& s) {
  s & resp_;
}

void MemoryController::register_ckpt_events() {
  ckpt::EventRegistry::instance().register_type("mem.Completion", [] {
    return std::make_unique<CompletionEvent>(nullptr);
  });
}

void MemoryController::serialize_state(ckpt::Serializer& s) {
  s & awaiting_ & arrival_ & next_token_ & wake_armed_for_;
  backend_->serialize(s);
}

}  // namespace sst::mem
