// Umbrella header + factory registration for the memory element library.
#pragma once

#include "core/sst.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/coherence.h"
#include "mem/dram.h"
#include "mem/mem_event.h"
#include "mem/memory_controller.h"

namespace sst::mem {

/// Registers "mem.Cache", "mem.Bus", and "mem.MemoryController" with the
/// process-wide Factory.  Idempotent.
void register_library();

}  // namespace sst::mem
