#include "mem/cache.h"

#include <utility>

#include "ckpt/serializer.h"

namespace sst::mem {

namespace {
[[nodiscard]] bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}
}  // namespace

Cache::Cache(Params& params) {
  const std::uint64_t size = params.required<UnitAlgebra>("size").to_bytes();
  line_size_ = params.find<std::uint32_t>("line_size", 64);
  assoc_ = params.find<std::uint32_t>("assoc", 8);
  hit_latency_ = params.find_period("hit_latency", "2ns");
  max_mshrs_ = params.find<std::uint32_t>("mshrs", 8);
  const std::string pf = params.find("prefetch", "none");
  if (pf == "none") {
    prefetch_enabled_ = false;
  } else if (pf == "nextline") {
    prefetch_enabled_ = true;
  } else {
    throw ConfigError("cache '" + name() + "': unknown prefetch policy '" +
                      pf + "' (known: none, nextline)");
  }
  prefetch_degree_ = params.find<std::uint32_t>("prefetch_degree", 2);

  if (!is_power_of_two(line_size_)) {
    throw ConfigError("cache '" + name() + "': line_size must be a power of 2");
  }
  if (assoc_ == 0) throw ConfigError("cache '" + name() + "': assoc must be >= 1");
  if (max_mshrs_ == 0) {
    throw ConfigError("cache '" + name() + "': mshrs must be >= 1");
  }
  const std::uint64_t lines = size / line_size_;
  if (lines == 0 || lines % assoc_ != 0) {
    throw ConfigError("cache '" + name() +
                      "': size must be a multiple of line_size * assoc");
  }
  num_sets_ = static_cast<std::uint32_t>(lines / assoc_);
  if (!is_power_of_two(num_sets_)) {
    throw ConfigError("cache '" + name() + "': set count must be a power of 2");
  }
  sets_.assign(num_sets_, std::vector<Line>(assoc_));

  cpu_link_ = configure_link(
      "cpu", [this](EventPtr ev) { handle_cpu(std::move(ev)); });
  mem_link_ = configure_link(
      "mem", [this](EventPtr ev) { handle_mem(std::move(ev)); });

  hits_ = stat_counter("hits");
  misses_ = stat_counter("misses");
  writebacks_ = stat_counter("writebacks");
  evictions_ = stat_counter("evictions");
  mshr_merges_ = stat_counter("mshr_merges");
  stalls_ = stat_counter("stalls");
  prefetches_ = stat_counter("prefetches");
  prefetch_hits_ = stat_counter("prefetch_hits");
}

int Cache::lookup(Addr a) const {
  const std::uint32_t set = set_index(a);
  const std::uint64_t tag = tag_of(a);
  for (std::uint32_t way = 0; way < assoc_; ++way) {
    const Line& line = sets_[set][way];
    if (line.valid && line.tag == tag) return static_cast<int>(way);
  }
  return -1;
}

int Cache::choose_victim(std::uint32_t set) const {
  int victim = 0;
  std::uint64_t oldest = ~0ULL;
  for (std::uint32_t way = 0; way < assoc_; ++way) {
    const Line& line = sets_[set][way];
    if (!line.valid) return static_cast<int>(way);
    if (line.lru < oldest) {
      oldest = line.lru;
      victim = static_cast<int>(way);
    }
  }
  return victim;
}

void Cache::touch(std::uint32_t set, int way) {
  sets_[set][static_cast<std::uint32_t>(way)].lru = lru_clock_++;
}

void Cache::respond(const MemEvent& req) {
  cpu_link_->send(req.make_response(), hit_latency_);
}

void Cache::handle_cpu(EventPtr ev) {
  auto req = event_cast<MemEvent>(std::move(ev));
  if (!is_request(req->cmd())) {
    throw SimulationError("cache '" + name() + "': response on cpu port");
  }
  if (line_base(req->addr()) !=
      line_base(req->addr() + (req->size() ? req->size() - 1 : 0))) {
    throw SimulationError("cache '" + name() + "': request crosses line: " +
                          req->describe());
  }
  process_request(std::move(req), /*count_stats=*/true);
}

void Cache::process_request(std::unique_ptr<MemEvent> req,
                            bool count_stats) {
  const Addr line_addr = line_base(req->addr());

  // Writeback from an upstream cache: update in place on hit; pass through
  // on miss (victim bypass — avoids allocating on cold writebacks).
  if (req->cmd() == MemCmd::kPutM) {
    const int way = lookup(req->addr());
    if (way >= 0) {
      const std::uint32_t set = set_index(req->addr());
      sets_[set][static_cast<std::uint32_t>(way)].dirty = true;
      touch(set, way);
      if (count_stats) hits_->add();
    } else {
      mem_link_->send(std::move(req));
    }
    return;
  }

  const int way = lookup(req->addr());
  if (way >= 0) {
    const std::uint32_t set = set_index(req->addr());
    Line& line = sets_[set][static_cast<std::uint32_t>(way)];
    if (line.prefetched) {
      line.prefetched = false;
      prefetch_hits_->add();
    }
    if (req->cmd() == MemCmd::kGetX) {
      line.dirty = true;
    }
    touch(set, way);
    if (count_stats) hits_->add();
    respond(*req);
    return;
  }

  if (count_stats) misses_->add();

  // Merge into an in-flight miss for the same line.  Joining an
  // in-flight prefetch counts as prefetch usefulness (it covered part of
  // the miss latency) and converts the fill into a demand fill.
  if (auto it = mshr_by_line_.find(line_addr); it != mshr_by_line_.end()) {
    Mshr& pending = mshrs_.at(it->second);
    if (pending.prefetch) {
      pending.prefetch = false;
      prefetch_hits_->add();
    }
    pending.waiters.push_back(std::move(req));
    mshr_merges_->add();
    return;
  }

  // MSHR table full: park the request; replay on fill.
  if (mshrs_.size() >= max_mshrs_) {
    stalls_->add();
    stalled_.push_back(std::move(req));
    return;
  }

  const std::uint64_t out_id = next_req_id_++;
  Mshr& mshr = mshrs_[out_id];
  mshr.line_addr = line_addr;
  mshr.waiters.push_back(std::move(req));
  mshr_by_line_[line_addr] = out_id;
  mem_link_->send(
      std::make_unique<MemEvent>(MemCmd::kGetS, line_addr, line_size_, out_id),
      hit_latency_);
  if (prefetch_enabled_) maybe_prefetch(line_addr);
}

void Cache::maybe_prefetch(Addr line_addr) {
  for (std::uint32_t d = 1; d <= prefetch_degree_; ++d) {
    const Addr target = line_addr + static_cast<Addr>(d) * line_size_;
    if (lookup(target) >= 0) continue;               // already resident
    if (mshr_by_line_.contains(target)) continue;    // already in flight
    if (mshrs_.size() >= max_mshrs_) return;         // never stall for a pf
    const std::uint64_t out_id = next_req_id_++;
    Mshr& mshr = mshrs_[out_id];
    mshr.line_addr = target;
    mshr.prefetch = true;
    mshr_by_line_[target] = out_id;
    prefetches_->add();
    mem_link_->send(
        std::make_unique<MemEvent>(MemCmd::kGetS, target, line_size_, out_id),
        hit_latency_);
  }
}

void Cache::install_line(Addr line_addr, bool dirty, bool prefetched) {
  const std::uint32_t set = set_index(line_addr);
  const int way = choose_victim(set);
  Line& line = sets_[set][static_cast<std::uint32_t>(way)];
  if (line.valid) {
    evictions_->add();
    if (line.dirty) {
      writebacks_->add();
      const Addr victim_addr =
          (line.tag * num_sets_ + set) * static_cast<Addr>(line_size_);
      mem_link_->send(std::make_unique<MemEvent>(MemCmd::kPutM, victim_addr,
                                                 line_size_, 0));
    }
  }
  line.valid = true;
  line.dirty = dirty;
  line.prefetched = prefetched;
  line.tag = tag_of(line_addr);
  touch(set, way);
}

void Cache::handle_mem(EventPtr ev) {
  auto resp = event_cast<MemEvent>(std::move(ev));
  if (!is_response(resp->cmd())) {
    throw SimulationError("cache '" + name() + "': request on mem port");
  }
  auto it = mshrs_.find(resp->req_id());
  if (it == mshrs_.end()) {
    throw SimulationError("cache '" + name() + "': fill for unknown MSHR");
  }
  Mshr mshr = std::move(it->second);
  mshrs_.erase(it);
  mshr_by_line_.erase(mshr.line_addr);

  bool dirty = false;
  for (const auto& w : mshr.waiters) {
    if (w->cmd() == MemCmd::kGetX) dirty = true;
  }
  install_line(mshr.line_addr, dirty, mshr.prefetch);
  for (const auto& w : mshr.waiters) respond(*w);

  // Replay stalled requests now that an MSHR freed (each replay may consume
  // the slot again, so stop when the table refills).
  while (!stalled_.empty() && mshrs_.size() < max_mshrs_) {
    auto next = std::move(stalled_.front());
    stalled_.pop_front();
    // Replays were counted (hit/miss) at first sight; don't recount.
    process_request(std::move(next), /*count_stats=*/false);
  }
}

void Cache::Line::ckpt_io(ckpt::Serializer& s) {
  s & tag & valid & dirty & prefetched & lru;
}

void Cache::Mshr::ckpt_io(ckpt::Serializer& s) {
  s & line_addr & prefetch & waiters;
}

void Cache::serialize_state(ckpt::Serializer& s) {
  s & sets_ & lru_clock_ & mshrs_ & mshr_by_line_ & stalled_ & next_req_id_;
}

}  // namespace sst::mem
